package gateway

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"
)

// adminPost posts to the admin control surface.
func adminPost(h http.Handler, target string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, target, nil))
	return w
}

func TestCanaryObservesWithoutDeciding(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	// Serving detector alerts on "union select", candidate on "1=1" —
	// so each attack below produces one disagreement, one per direction.
	g := mustGateway(t, up.URL, stubDetector{needle: "union select"}, Options{})
	if err := g.StartCanary(stubDetector{needle: "1=1"}, CanaryConfig{Version: "v000002", Hash: "abc"}); err != nil {
		t.Fatalf("StartCanary: %v", err)
	}

	if w := get(g, "/p?id=1"); w.Code != http.StatusOK {
		t.Fatalf("benign request: %d", w.Code)
	}
	if w := get(g, "/p?id=1+union+select+2"); w.Code != http.StatusForbidden {
		t.Fatalf("old-detector attack: %d, want 403", w.Code)
	}
	// Candidate-only alert: the response must still be the serving
	// detector's verdict — forwarded, not blocked.
	if w := get(g, "/p?id=1+or+1%3d1"); w.Code != http.StatusOK {
		t.Fatalf("candidate-only attack blocked (%d); canary must not decide", w.Code)
	}

	rep, ok := g.CanaryReport()
	if !ok {
		t.Fatal("no canary report")
	}
	if rep.Version != "v000002" || rep.Sampled != 3 {
		t.Fatalf("report %+v, want version v000002 sampled 3", rep)
	}
	if rep.Agree != 1 || rep.OldOnly != 1 || rep.NewOnly != 1 {
		t.Fatalf("deltas %+v, want agree 1 oldOnly 1 newOnly 1", rep)
	}
}

func TestCanaryFractionDeterministic(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	sample := func() int64 {
		g := mustGateway(t, up.URL, stubDetector{}, Options{})
		if err := g.StartCanary(stubDetector{}, CanaryConfig{Fraction: 0.5, Seed: 7}); err != nil {
			t.Fatalf("StartCanary: %v", err)
		}
		for i := 0; i < 200; i++ {
			get(g, "/p?id="+url.QueryEscape(strings.Repeat("x", i%17)+"-"+string(rune('a'+i%26))))
		}
		rep, _ := g.CanaryReport()
		return rep.Sampled
	}
	a, b := sample(), sample()
	if a != b {
		t.Fatalf("same traffic and seed sampled %d then %d requests", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("fraction 0.5 sampled %d of 200; sampling not partial", a)
	}
}

func TestCanaryLifecycleAndPromotion(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{})

	if _, err := g.PromoteCanary(); err == nil {
		t.Fatal("promote without canary must fail")
	}
	if g.AbortCanary() {
		t.Fatal("abort without canary must report false")
	}
	if err := g.StartCanary(stubDetector{needle: "x"}, CanaryConfig{Version: "v000002", Hash: "deadbeef1234ffff"}); err != nil {
		t.Fatalf("StartCanary: %v", err)
	}
	if err := g.StartCanary(stubDetector{}, CanaryConfig{}); err == nil {
		t.Fatal("second concurrent canary must be rejected")
	}
	gen, err := g.PromoteCanary()
	if err != nil {
		t.Fatalf("PromoteCanary: %v", err)
	}
	if gen != 2 {
		t.Fatalf("promotion generation %d, want 2", gen)
	}
	if _, ok := g.CanaryReport(); ok {
		t.Fatal("canary still active after promotion")
	}
	// The promoted detector serves, tagged with its artifact identity
	// (hash truncated to 12 chars in the header).
	got := get(g, "/p?id=1").Header().Get("X-Psigene-Gen")
	if got != "2 v000002 sha256:deadbeef1234" {
		t.Fatalf("X-Psigene-Gen %q after promotion", got)
	}
	snap := g.Snapshot()
	if snap.ModelVersion != "v000002" || snap.ModelSHA256 != "deadbeef1234ffff" {
		t.Fatalf("snapshot model identity %q/%q", snap.ModelVersion, snap.ModelSHA256)
	}

	// A panicking candidate never survives the probe.
	if err := g.StartCanary(panicDetector{}, CanaryConfig{}); err == nil {
		t.Fatal("panicking candidate must fail the canary probe")
	}
}

func TestCanaryAdminEndpoints(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{})
	path := trainedModel(t)
	admin := g.Admin(AdminConfig{ModelDir: filepath.Dir(path)})

	if w := adminGet(admin, "/-/canary"); w.Code != http.StatusNotFound {
		t.Fatalf("canary report with none active: %d", w.Code)
	}
	w := adminPost(admin, "/-/canary/start?path="+url.QueryEscape(filepath.Base(path))+"&fraction=1&seed=3")
	if w.Code != http.StatusOK {
		t.Fatalf("canary start: %d: %s", w.Code, w.Body.String())
	}
	if w := adminGet(admin, "/-/canary"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "file:") {
		t.Fatalf("canary report: %d: %s", w.Code, w.Body.String())
	}
	// Traversal is rejected before the filesystem is touched.
	if w := adminPost(admin, "/-/canary/start?path=..%2Fmodel.json"); w.Code != http.StatusBadRequest {
		t.Fatalf("traversal canary path: %d", w.Code)
	}
	if w := adminPost(admin, "/-/canary/abort"); w.Code != http.StatusOK {
		t.Fatalf("canary abort: %d", w.Code)
	}
	if w := adminPost(admin, "/-/canary/abort"); w.Code != http.StatusNotFound {
		t.Fatalf("second abort: %d, want 404", w.Code)
	}

	// Start again and promote through the admin surface.
	if w := adminPost(admin, "/-/canary/start?path="+url.QueryEscape(filepath.Base(path))); w.Code != http.StatusOK {
		t.Fatalf("canary restart: %d", w.Code)
	}
	if w := adminPost(admin, "/-/canary/promote"); w.Code != http.StatusOK {
		t.Fatalf("canary promote: %d: %s", w.Code, w.Body.String())
	}
	if snap := g.Snapshot(); !strings.HasPrefix(snap.ModelVersion, "file:") {
		t.Fatalf("promoted model version %q", snap.ModelVersion)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{needle: "union select"}, Options{
		ModelVersion: "v000001", ModelSHA256: "cafe",
	})
	admin := g.Admin(AdminConfig{})
	get(g, "/p?id=1")
	get(g, "/p?id=1+union+select+2")

	w := adminGet(admin, "/-/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"psigened_requests_total 2",
		"psigened_blocked_total 1",
		"psigened_forwarded_total 1",
		"psigened_reload_generation 1",
		"psigened_breaker_state 0",
		`psigened_model_info{detector="stub",version="v000001",sha256="cafe"} 1`,
		"# TYPE psigened_requests_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
	if strings.Contains(body, "psigened_canary_sampled_total") {
		t.Fatal("canary metrics present with no canary active")
	}

	// Canary metrics appear once a canary runs.
	if err := g.StartCanary(stubDetector{}, CanaryConfig{Version: "v000002"}); err != nil {
		t.Fatalf("StartCanary: %v", err)
	}
	get(g, "/p?id=2")
	body = adminGet(admin, "/-/metrics").Body.String()
	if !strings.Contains(body, "psigened_canary_sampled_total 1") {
		t.Fatalf("canary metrics missing in:\n%s", body)
	}
}
