package gateway

// Gateway-level abuse-control tests: the admission subsystem wired into
// the serving path. Per-client rejections (403 denylist, 429 limiter and
// penalty box) must be distinct from the global 503 shed, must never
// reach the upstream, and any admission failure must fail open rather
// than drop traffic. The integrated storm replays deterministic zipfian
// traffic on an injected clock and pins the full status sequence across
// same-seed runs.

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"psigene/internal/admission"
)

// tickClock is the injected deterministic time source.
type tickClock struct{ ns atomic.Int64 }

func (c *tickClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *tickClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// countingUpstream records how many requests actually reached it.
func countingUpstream() (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, "ok")
	}))
	return up, &hits
}

// getFrom issues a request with an explicit client socket address.
func getFrom(g *Gateway, remote, target string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodGet, target, nil)
	r.RemoteAddr = remote
	g.ServeHTTP(w, r)
	return w
}

func mustDenySet(t *testing.T, cidrs ...string) *admission.CIDRSet {
	t.Helper()
	s, err := admission.ParseDenylist(strings.NewReader(strings.Join(cidrs, "\n")))
	if err != nil {
		t.Fatalf("ParseDenylist: %v", err)
	}
	return s
}

func TestGatewayDenylist403(t *testing.T) {
	up, hits := countingUpstream()
	defer up.Close()
	ctrl := admission.New(admission.Config{Denylist: mustDenySet(t, "203.0.113.0/24")})
	g := mustGateway(t, up.URL, stubDetector{}, Options{Admission: ctrl})

	w := getFrom(g, "203.0.113.9:4321", "/p?id=1")
	if w.Code != http.StatusForbidden {
		t.Fatalf("denylisted client: %d, want 403", w.Code)
	}
	if !strings.Contains(w.Body.String(), "address denied") {
		t.Fatalf("denylist body %q", w.Body.String())
	}
	if hits.Load() != 0 {
		t.Fatal("denied request reached the upstream")
	}
	if w := getFrom(g, "198.51.100.7:4321", "/p?id=1"); w.Code != http.StatusOK {
		t.Fatalf("clean client: %d, want 200", w.Code)
	}
	s := g.Snapshot()
	if s.Denied != 1 || s.Forwarded != 1 {
		t.Fatalf("counters: denied=%d forwarded=%d", s.Denied, s.Forwarded)
	}
	if s.Admission == nil || s.Admission.DenylistEntries != 1 {
		t.Fatalf("admission stats missing from snapshot: %+v", s.Admission)
	}
}

func TestGatewayRateLimit429DistinctFromShed(t *testing.T) {
	up, hits := countingUpstream()
	defer up.Close()
	clk := &tickClock{}
	ctrl := admission.New(admission.Config{QPS: 2, StrikeThreshold: 3, BlockSeconds: 4, Now: clk.now})
	g := mustGateway(t, up.URL, stubDetector{}, Options{Admission: ctrl})

	const client = "198.51.100.7:1"
	for i := 0; i < 2; i++ {
		if w := getFrom(g, client, "/p"); w.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, w.Code)
		}
	}
	// Over the tier: a per-caller 429 with Retry-After — NOT the global
	// 503 shed, which signals process overload rather than caller abuse.
	w := getFrom(g, client, "/p")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("limited: %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("limiter rejection must carry Retry-After")
	}
	if !strings.Contains(w.Body.String(), "qps") {
		t.Fatalf("limited body %q must name the tier", w.Body.String())
	}
	// Two more rejections escalate into the penalty box: still 429 but
	// with the blocked wording and the block-length Retry-After.
	getFrom(g, client, "/p")
	w = getFrom(g, client, "/p")
	if w.Code != http.StatusTooManyRequests || !strings.Contains(w.Body.String(), "blocked") {
		t.Fatalf("boxed: %d %q", w.Code, w.Body.String())
	}
	// A different client is untouched the whole time.
	if w := getFrom(g, "198.51.100.8:1", "/p"); w.Code != http.StatusOK {
		t.Fatalf("other client: %d", w.Code)
	}
	s := g.Snapshot()
	if s.RateLimited != 2 || s.PenaltyBoxed != 1 || s.Shed != 0 {
		t.Fatalf("counters: rateLimited=%d penaltyBoxed=%d shed=%d", s.RateLimited, s.PenaltyBoxed, s.Shed)
	}
	if hits.Load() != 3 {
		t.Fatalf("upstream saw %d requests, want 3 (rejections must not proxy)", hits.Load())
	}
	// The boxed client recovers once the block expires.
	clk.advance(10 * time.Second)
	if w := getFrom(g, client, "/p"); w.Code != http.StatusOK {
		t.Fatalf("recovered client: %d, want 200", w.Code)
	}
}

// TestGatewayAdmissionPanicFailsOpen: a controller failure must degrade
// to "no per-client screening", never to dropped traffic — the same
// containment stance as scoring panics.
func TestGatewayAdmissionPanicFailsOpen(t *testing.T) {
	up, hits := countingUpstream()
	defer up.Close()
	ctrl := admission.New(admission.Config{
		QPS:     1,
		KeyFunc: func(*http.Request) admission.Caller { panic("identity subsystem wedged") },
	})
	g := mustGateway(t, up.URL, stubDetector{}, Options{Admission: ctrl})

	for i := 0; i < 3; i++ {
		if w := getFrom(g, "198.51.100.7:1", "/p"); w.Code != http.StatusOK {
			t.Fatalf("request %d through panicking admission: %d, want 200 (fail open)", i, w.Code)
		}
	}
	s := g.Snapshot()
	if s.AdmissionPanics != 3 || s.Forwarded != 3 {
		t.Fatalf("counters: panics=%d forwarded=%d", s.AdmissionPanics, s.Forwarded)
	}
	if hits.Load() != 3 {
		t.Fatalf("upstream saw %d, want all 3", hits.Load())
	}
}

// adminDenyReload posts a denylist reload for the given name.
func adminDenyReload(h http.Handler, name string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/-/denylist/reload?path="+url.QueryEscape(name), nil))
	return w
}

func TestDenylistReloadAndErrorPaths(t *testing.T) {
	up, _ := countingUpstream()
	defer up.Close()
	ctrl := admission.New(admission.Config{Denylist: mustDenySet(t, "203.0.113.0/24")})
	g := mustGateway(t, up.URL, stubDetector{}, Options{Admission: ctrl})

	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "good.txt"), "198.51.100.0/24\n# comment\n2001:db8::/32\n")
	// The bad file carries a recognizable secret-looking token: the error
	// response must never echo file contents back to the caller.
	writeFile(t, filepath.Join(dir, "bad.txt"), "198.51.100.0/24\nhostname-of-internal-db=TOPSECRET\n")
	var log strings.Builder
	admin := g.Admin(AdminConfig{DenyDir: dir, Log: &log})

	// Successful swap: entries and a bumped generation in the response,
	// and the new set serves (old entry unbanned, new entry banned).
	w := adminDenyReload(admin, "good.txt")
	if w.Code != http.StatusOK {
		t.Fatalf("good reload: %d: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), `"entries": 2`) {
		t.Fatalf("reload response %q", w.Body.String())
	}
	// The old 203.0.113.0/24 entry is gone from good.txt → now allowed.
	if w := getFrom(g, "203.0.113.9:1", "/p"); w.Code != http.StatusOK {
		t.Fatalf("203.0.113.9 after swap: %d, want 200", w.Code)
	}

	// A malformed file: 400, generic body, detail only in the admin log,
	// previous denylist still serving.
	_, genBefore := ctrl.Denylist()
	w = adminDenyReload(admin, "bad.txt")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad reload: %d, want 400", w.Code)
	}
	for _, leak := range []string{"TOPSECRET", "internal-db", dir} {
		if strings.Contains(w.Body.String(), leak) {
			t.Fatalf("reload error echoed %q: %s", leak, w.Body.String())
		}
	}
	if !strings.Contains(log.String(), "bad.txt") {
		t.Fatalf("reload failure not logged:\n%s", log.String())
	}
	if _, gen := ctrl.Denylist(); gen != genBefore {
		t.Fatalf("generation moved on a rejected reload: %d → %d", genBefore, gen)
	}
	if w := getFrom(g, "198.51.100.9:1", "/p"); w.Code != http.StatusForbidden {
		t.Fatalf("previous denylist stopped serving after rejected reload: %d", w.Code)
	}

	// Missing file: same generic 400 — not a file-existence oracle.
	if w := adminDenyReload(admin, "missing.txt"); w.Code != http.StatusBadRequest {
		t.Fatalf("missing file reload: %d, want 400", w.Code)
	}
	// Path confinement and method/config gates.
	for _, name := range []string{"../bad.txt", "/etc/hosts", ".."} {
		if w := adminDenyReload(admin, name); w.Code != http.StatusBadRequest {
			t.Fatalf("escaping path %q: %d, want 400", name, w.Code)
		}
	}
	if w := adminGet(admin, "/-/denylist/reload"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: %d, want 405", w.Code)
	}
	noDir := g.Admin(AdminConfig{})
	if w := adminDenyReload(noDir, "good.txt"); w.Code != http.StatusForbidden {
		t.Fatalf("reload without deny dir: %d, want 403", w.Code)
	}
	if s := g.Snapshot(); s.DenyReloadFailures != 2 {
		t.Fatalf("denyReloadFailures=%d, want 2 (bad file + missing file)", s.DenyReloadFailures)
	}

	// /-/denylist surfaces the controller stats; without a controller both
	// denylist endpoints are absent/forbidden.
	if w := adminGet(admin, "/-/denylist"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "denylistGeneration") {
		t.Fatalf("denylist stats: %d %q", w.Code, w.Body.String())
	}
	plain := mustGateway(t, up.URL, stubDetector{}, Options{})
	plainAdmin := plain.Admin(AdminConfig{DenyDir: dir})
	if w := adminGet(plainAdmin, "/-/denylist"); w.Code != http.StatusNotFound {
		t.Fatalf("denylist stats without controller: %d, want 404", w.Code)
	}
	if w := adminDenyReload(plainAdmin, "good.txt"); w.Code != http.StatusForbidden {
		t.Fatalf("denylist reload without controller: %d, want 403", w.Code)
	}
}

// TestAbuseChaosGatewayStorm replays a deterministic zipfian storm
// through the full serving path: one hot client hammering, benign
// zipf-distributed clients browsing, one denylisted client probing. The
// status sequence must be bit-identical across same-seed runs, benign
// clients must see only 200s, and the hot client must traverse
// 200→429(limited)→429(boxed) and recover after the block.
func TestAbuseChaosGatewayStorm(t *testing.T) {
	run := func(seed int64) (string, *Gateway, *tickClock, *atomic.Int64) {
		up, hits := countingUpstream()
		t.Cleanup(up.Close)
		clk := &tickClock{}
		ctrl := admission.New(admission.Config{
			QPS: 100, StrikeThreshold: 3, BlockSeconds: 4, Seed: seed,
			Denylist: mustDenySet(t, "203.0.113.66"),
			Now:      clk.now,
		})
		g := mustGateway(t, up.URL, stubDetector{}, Options{Admission: ctrl})
		zipf := rand.NewZipf(rand.New(rand.NewSource(seed)), 1.3, 1, 999)

		var b strings.Builder
		for i := 0; i < 2000; i++ {
			clk.advance(time.Millisecond) // 1000 rps aggregate
			var remote string
			switch {
			case i%5 == 4:
				remote = "203.0.113.66:1" // denylisted prober
			case i%5 < 3:
				remote = "198.51.100.250:1" // hot client: ~600 rps vs qps=100
			default:
				remote = fmt.Sprintf("198.51.%d.%d:1", zipf.Uint64()/256, zipf.Uint64()%256)
			}
			w := getFrom(g, remote, "/p?id=1")
			fmt.Fprintf(&b, "%s=%d;", remote, w.Code)
		}
		return b.String(), g, clk, hits
	}

	const seed = 77
	ta, g, clk, hits := run(seed)
	tb, _, _, _ := run(seed)
	if ta != tb {
		t.Fatal("same-seed gateway storms produced different status transcripts")
	}

	// Per-client status inventory.
	statuses := map[string]map[int]int{}
	for _, ev := range strings.Split(strings.TrimSuffix(ta, ";"), ";") {
		eq := strings.LastIndex(ev, "=")
		if eq < 0 {
			t.Fatalf("bad transcript entry %q", ev)
		}
		remote := ev[:eq]
		code, err := strconv.Atoi(ev[eq+1:])
		if err != nil {
			t.Fatalf("bad transcript entry %q: %v", ev, err)
		}
		m := statuses[remote]
		if m == nil {
			m = map[int]int{}
			statuses[remote] = m
		}
		m[code]++
	}
	for remote, m := range statuses {
		switch remote {
		case "203.0.113.66:1":
			if len(m) != 1 || m[http.StatusForbidden] == 0 {
				t.Fatalf("denylisted prober statuses %v, want only 403", m)
			}
		case "198.51.100.250:1":
			if m[http.StatusOK] == 0 || m[http.StatusTooManyRequests] == 0 {
				t.Fatalf("hot client statuses %v, want both 200 and 429", m)
			}
		default:
			if len(m) != 1 || m[http.StatusOK] == 0 {
				t.Fatalf("benign client %s shed during the storm: %v", remote, m)
			}
		}
	}

	// The hot client is boxed when the storm ends; after the block runs
	// out it is served again.
	s := g.Snapshot()
	if s.Denied == 0 || s.RateLimited == 0 || s.PenaltyBoxed == 0 {
		t.Fatalf("storm counters incomplete: %+v", s)
	}
	if s.Shed != 0 {
		t.Fatalf("global shed fired during a per-client storm: %d", s.Shed)
	}
	if s.Forwarded != hits.Load() {
		t.Fatalf("forwarded=%d but upstream saw %d", s.Forwarded, hits.Load())
	}
	clk.advance(time.Hour)
	if w := getFrom(g, "198.51.100.250:1", "/p"); w.Code != http.StatusOK {
		t.Fatalf("hot client after the blocks expire: %d, want 200", w.Code)
	}
	t.Logf("gateway storm: forwarded=%d denied=%d limited=%d boxed=%d, %d distinct clients",
		s.Forwarded, s.Denied, s.RateLimited, s.PenaltyBoxed, len(statuses))
}
