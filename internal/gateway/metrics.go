package gateway

import (
	"fmt"
	"io"
)

// writeMetrics renders a Snapshot in the Prometheus text exposition
// format (version 0.0.4) for GET /-/metrics. Everything comes from the
// same Snapshot that backs /-/statz, so the two surfaces can never
// disagree; this file only formats. Counters use the _total suffix,
// gauges carry instantaneous state, and the serving model is exposed the
// Prometheus way — an info-style gauge whose labels hold the version and
// content hash, plus psigened_reload_generation for the swap counter that
// X-Psigene-Gen stamps on responses.
func writeMetrics(w io.Writer, s Snapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("psigened_requests_total", "Requests received by the data path.", s.Total)
	counter("psigened_blocked_total", "Requests blocked by a signature match.", s.Blocked)
	counter("psigened_forwarded_total", "Requests forwarded to the upstream.", s.Forwarded)
	counter("psigened_shed_total", "Requests shed by admission control (overload or draining).", s.Shed)
	counter("psigened_body_too_large_total", "Requests rejected for exceeding the body cap.", s.TooLarge)
	counter("psigened_body_errors_total", "Requests with unreadable bodies.", s.BodyErrors)
	counter("psigened_score_panics_total", "Scoring attempts that panicked.", s.ScorePanics)
	counter("psigened_failed_open_total", "Unscorable requests forwarded under fail-open.", s.FailedOpen)
	counter("psigened_failed_closed_total", "Unscorable requests rejected under fail-closed.", s.FailedClosed)
	counter("psigened_upstream_errors_total", "Upstream transport failures.", s.UpstreamErrors)
	counter("psigened_breaker_rejected_total", "Requests rejected by the upstream circuit breaker.", s.BreakerRejected)
	counter("psigened_budget_spent_total", "Requests whose deadline budget was exhausted by scoring.", s.BudgetSpent)
	counter("psigened_reloads_total", "Successful detector swaps (reloads and canary promotions).", s.Reloads)
	counter("psigened_reload_failures_total", "Rejected detector swaps.", s.ReloadFailures)

	counter("psigened_denied_total", "Requests rejected by the address denylist (403).", s.Denied)
	counter("psigened_rate_limited_total", "Requests rejected by a per-caller tier limit (429).", s.RateLimited)
	counter("psigened_penalty_boxed_total", "Requests rejected while their caller sat in the penalty box (429).", s.PenaltyBoxed)
	counter("psigened_admission_panics_total", "Admission-controller panics failed open to the global semaphore.", s.AdmissionPanics)
	counter("psigened_denylist_reload_failures_total", "Rejected denylist pushes (previous trie kept serving).", s.DenyReloadFailures)
	if a := s.Admission; a != nil {
		counter("psigened_admission_checked_total", "Requests screened by per-client admission control.", a.Checked)
		counter("psigened_admission_recoveries_total", "Callers released from the penalty box.", a.Recoveries)
		counter("psigened_admission_evictions_total", "Limiter states evicted from the bounded caller LRU.", a.Evictions)
		gauge("psigened_admission_tracked_callers", "Caller limiter states currently held in the LRU.", float64(a.TrackedCallers))
		gauge("psigened_denylist_entries", "Entries in the serving denylist trie.", float64(a.DenylistEntries))
		gauge("psigened_denylist_generation", "Denylist swap generation.", float64(a.DenylistGeneration))
		counter("psigened_denylist_probe_failures_total", "Candidate denylists rejected by the validate-probe-swap gate.", a.DenylistProbeFailures)
	}

	gauge("psigened_draining", "1 while the gateway is draining, 0 otherwise.", boolGauge(s.Draining))
	gauge("psigened_reload_generation", "Generation of the serving detector (the X-Psigene-Gen value).", float64(s.Generation))
	if s.Breaker != nil {
		// resilience.BreakerState already encodes 0 closed / 1 open /
		// 2 half-open.
		gauge("psigened_breaker_state", "Upstream breaker state: 0 closed, 1 open, 2 half-open.", float64(s.Breaker.State))
	}

	// Info-style gauge: constant 1, identity in the labels.
	fmt.Fprintf(w, "# HELP psigened_model_info Serving model identity (artifact version and content hash).\n# TYPE psigened_model_info gauge\n")
	fmt.Fprintf(w, "psigened_model_info{detector=%q,version=%q,sha256=%q} 1\n",
		s.Detector, s.ModelVersion, s.ModelSHA256)

	counter("psigened_scored_total", "Requests scored by the serving detector.", s.Scored)
	gauge("psigened_allocs_per_request", "Approximate process heap allocations per scored request since startup.", s.AllocsPerRequest)
	if p := s.Prefilter; p != nil {
		counter("psigened_prefilter_samples_total", "Samples extracted through the literal prefilter.", p.Samples)
		counter("psigened_prefilter_evaluated_total", "Regex evaluations run after prefilter gating.", p.Evaluated)
		counter("psigened_prefilter_skipped_total", "Regex evaluations skipped by the literal prefilter.", p.Skipped)
		gauge("psigened_prefilter_literals", "Distinct literals compiled into the prefilter automaton.", float64(p.Literals))
		gauge("psigened_prefilter_gated_patterns", "Catalog patterns gated by derived literals.", float64(p.Gated))
		gauge("psigened_prefilter_always_run_patterns", "Prefilter-opaque catalog patterns evaluated on every sample.", float64(p.AlwaysRun))
	}

	gauge("psigened_scoring_latency_seconds_p50", "Median scoring latency over the stats window.", s.ScoringLatency.P50.Seconds())
	gauge("psigened_scoring_latency_seconds_p99", "99th-percentile scoring latency over the stats window.", s.ScoringLatency.P99.Seconds())
	gauge("psigened_scoring_latency_seconds_max", "Slowest scoring latency over the stats window.", s.ScoringLatency.Max.Seconds())

	if c := s.Canary; c != nil {
		fmt.Fprintf(w, "# HELP psigened_canary_info Active canary candidate identity.\n# TYPE psigened_canary_info gauge\n")
		fmt.Fprintf(w, "psigened_canary_info{version=%q,sha256=%q} 1\n", c.Version, c.Hash)
		gauge("psigened_canary_fraction", "Fraction of scored traffic shadow-scored by the canary.", c.Fraction)
		counter("psigened_canary_sampled_total", "Requests shadow-scored by the canary candidate.", c.Sampled)
		counter("psigened_canary_agree_total", "Sampled requests where both detectors agreed.", c.Agree)
		counter("psigened_canary_old_only_total", "Sampled requests only the serving detector alerted on.", c.OldOnly)
		counter("psigened_canary_new_only_total", "Sampled requests only the candidate alerted on.", c.NewOnly)
		counter("psigened_canary_panics_total", "Canary scoring attempts that panicked.", c.Panics)
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
