package gateway

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// hopByHopHeaders are stripped when copying headers either direction
// (RFC 7230 §6.1); everything else passes through untouched.
var hopByHopHeaders = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

// forward is the upstream leg: breaker check, a bounded-deadline round
// trip, and a fully-buffered bounded body read before the first byte is
// written downstream. Buffering first means a mid-body upstream failure
// (reset, truncation) becomes a clean 502 instead of a half-written 200.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, body []byte, budget time.Duration) {
	if !g.breakerAllow() {
		g.stats.breakerRejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(g.opts.RetryAfter))
		http.Error(w, "gateway: upstream circuit open", http.StatusServiceUnavailable)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	target := *g.upstream
	target.Path = r.URL.Path
	target.RawQuery = r.URL.RawQuery
	out, err := http.NewRequestWithContext(ctx, r.Method, target.String(), bytes.NewReader(body))
	if err != nil {
		g.upstreamFailed(w, err)
		return
	}
	copyHeaders(out.Header, r.Header)
	setForwardedFor(out.Header, r)

	resp, err := g.opts.Client.Do(out)
	if err != nil {
		g.upstreamFailed(w, err)
		return
	}
	defer resp.Body.Close()

	// Bounded full read: a Truncate fault or oversized response surfaces
	// here, while downstream has seen nothing yet.
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, g.opts.MaxResponseBytes+1))
	if err != nil {
		g.upstreamFailed(w, err)
		return
	}
	if int64(len(respBody)) > g.opts.MaxResponseBytes {
		g.upstreamFailed(w, errResponseTooLarge)
		return
	}

	// The round trip completed: the transport is healthy, whatever the
	// status. Upstream 5xx are application responses (the demo webapp
	// answers SQL errors with 500) and pass through without feeding the
	// breaker — the breaker protects against a dead transport, not an
	// unhappy application.
	g.breakerSuccess()
	g.stats.forwarded.Add(1)

	copyHeaders(w.Header(), resp.Header)
	w.Header().Set("Content-Length", strconv.Itoa(len(respBody)))
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(respBody)
}

// errResponseTooLarge marks an upstream body that blew the cap.
var errResponseTooLarge = errTooLarge{}

type errTooLarge struct{}

func (errTooLarge) Error() string { return "gateway: upstream response exceeds cap" }

// upstreamFailed answers 502 and feeds the breaker one failure.
func (g *Gateway) upstreamFailed(w http.ResponseWriter, err error) {
	g.stats.upstreamErrors.Add(1)
	g.breakerFailure()
	http.Error(w, "gateway: upstream failed: "+err.Error(), http.StatusBadGateway)
}

// breakerAllow, breakerSuccess, breakerFailure wrap the single-threaded
// resilience.Breaker in the gateway mutex. A nil breaker allows all.
func (g *Gateway) breakerAllow() bool {
	if g.breaker == nil {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.breaker.Allow()
}

func (g *Gateway) breakerSuccess() {
	if g.breaker == nil {
		return
	}
	g.mu.Lock()
	g.breaker.Success()
	g.mu.Unlock()
}

func (g *Gateway) breakerFailure() {
	if g.breaker == nil {
		return
	}
	g.mu.Lock()
	g.breaker.Failure()
	g.mu.Unlock()
}

// setForwardedFor appends the client IP (RemoteAddr minus the port) to
// any X-Forwarded-For chain an outer proxy already built, rather than
// overwriting it.
func setForwardedFor(h http.Header, r *http.Request) {
	ip := r.RemoteAddr
	if host, _, err := net.SplitHostPort(ip); err == nil {
		ip = host
	}
	if ip == "" {
		return
	}
	if prior := strings.Join(r.Header.Values("X-Forwarded-For"), ", "); prior != "" {
		ip = prior + ", " + ip
	}
	h.Set("X-Forwarded-For", ip)
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopByHopHeaders[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
