package gateway

import (
	"fmt"

	"psigene/internal/httpx"
	"psigene/internal/ids"
)

// score runs one inspection inside a recover() boundary. A panicking
// signature (bad regexp state, out-of-range feature index from a corrupt
// model that slipped past validation) must cost at most its own request:
// the panic is converted to an error and the caller applies the
// fail-open/fail-closed policy.
func (g *Gateway) score(det ids.Detector, req httpx.Request) (v ids.Verdict, err error) {
	defer func() {
		if r := recover(); r != nil {
			v = ids.Verdict{}
			err = fmt.Errorf("gateway: detector %s panicked: %v", det.Name(), r)
		}
	}()
	return det.Inspect(req), nil
}

// probe validates a candidate detector before it is swapped in: every
// probe request must score without panicking. The probe set is small and
// covers the shapes the gateway feeds detectors — an empty request, a
// benign lookup, and a hostile payload with broken escapes.
func probe(det ids.Detector) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("gateway: candidate detector %s panicked on probe: %v", det.Name(), r)
		}
	}()
	for _, req := range probeRequests {
		det.Inspect(req)
	}
	return nil
}

// ProbeDetector validates a candidate detector without installing it: the
// probe workload must score without panicking. This is the first phase of
// the fleet's two-phase coordinated reload — every replica probes the
// candidate before any replica commits, so a candidate that would be
// rejected anywhere is rejected everywhere and no replica ever swaps.
func (g *Gateway) ProbeDetector(det ids.Detector) error {
	if det == nil {
		return fmt.Errorf("gateway: nil detector")
	}
	return probe(det)
}

// probeRequests is the validation workload for candidate detectors.
var probeRequests = []httpx.Request{
	{Method: "GET", Path: "/"},
	{Method: "GET", Path: "/product.php", RawQuery: "id=42"},
	{Method: "GET", Path: "/product.php", RawQuery: "id=1%27+UNION+SELECT+username,password+FROM+users--"},
	{Method: "POST", Path: "/login", Body: "user=admin&pass=%27%20or%201%3D1--"},
	{Method: "GET", Path: "/search", RawQuery: "q=%" /* broken escape stays literal */},
}
