package gateway

import (
	"fmt"
	"sync/atomic"

	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/resilience"
)

// The canary stage serves a candidate detector side-by-side with the one
// in production: a deterministic sample of live traffic is shadow-scored
// by the candidate and the verdict deltas tallied, without the candidate
// ever deciding a response. Sampling hashes the request line under a
// fixed seed (resilience.HashKey), so the same traffic sequence and seed
// always canary the same requests — lifecycle chaos runs are replayable
// bit-for-bit. The lifecycle runner (internal/lifecycle) drives the
// sequence: StartCanary → traffic → CanaryReport → PromoteCanary or
// AbortCanary; operators get the same verbs on the admin listener.

// CanaryConfig configures a canary run.
type CanaryConfig struct {
	// Fraction of scored requests shadow-scored by the candidate, in
	// (0, 1]. Default 1 (every scored request).
	Fraction float64
	// Seed keys the deterministic sampling hash.
	Seed int64
	// Version and Hash tag the candidate with its artifact version and
	// content hash, carried into the detector state on promotion.
	Version, Hash string
}

// canaryState is the immutable candidate under evaluation plus its delta
// counters. A single atomic pointer holds at most one active canary.
type canaryState struct {
	det ids.Detector
	cfg CanaryConfig

	sampled, agree, oldOnly, newOnly, panics atomic.Int64
}

// CanaryReport is the verdict-delta summary of a canary run, exposed via
// GET /-/canary and folded into /-/statz.
type CanaryReport struct {
	// Version and Hash identify the candidate artifact.
	Version string `json:"version,omitempty"`
	Hash    string `json:"hash,omitempty"`
	// Fraction and Seed echo the sampling configuration.
	Fraction float64 `json:"fraction"`
	Seed     int64   `json:"seed"`
	// Sampled counts requests shadow-scored by the candidate.
	Sampled int64 `json:"sampled"`
	// Agree counts sampled requests where both detectors reached the same
	// alert verdict; OldOnly and NewOnly count the two disagreement
	// directions (serving detector alerted / candidate alerted).
	Agree   int64 `json:"agree"`
	OldOnly int64 `json:"oldOnly"`
	NewOnly int64 `json:"newOnly"`
	// Panics counts candidate scoring failures — any panic disqualifies a
	// candidate regardless of agreement.
	Panics int64 `json:"panics"`
}

// StartCanary begins shadow-scoring live traffic with det. The candidate
// is probed first, exactly like a reload, so a detector that cannot score
// the probe corpus never observes production traffic. Only one canary may
// be active at a time.
func (g *Gateway) StartCanary(det ids.Detector, cfg CanaryConfig) error {
	if det == nil {
		return fmt.Errorf("gateway: canary rejected: nil detector")
	}
	if cfg.Fraction == 0 {
		cfg.Fraction = 1
	}
	if cfg.Fraction < 0 || cfg.Fraction > 1 {
		return fmt.Errorf("gateway: canary fraction %v outside (0, 1]", cfg.Fraction)
	}
	if err := probe(det); err != nil {
		return fmt.Errorf("gateway: canary rejected: %w", err)
	}
	if !g.canary.CompareAndSwap(nil, &canaryState{det: det, cfg: cfg}) {
		return fmt.Errorf("gateway: canary already active")
	}
	return nil
}

// observeCanary shadow-scores one request with the active candidate, if
// any and if the request falls in the deterministic sample. primary is
// the serving detector's verdict for the same request.
func (g *Gateway) observeCanary(req httpx.Request, primary ids.Verdict) {
	c := g.canary.Load()
	if c == nil {
		return
	}
	if c.cfg.Fraction < 1 {
		key := req.Method + " " + req.Path
		if req.RawQuery != "" {
			key += "?" + req.RawQuery
		}
		if resilience.UnitFloat(resilience.HashKey(c.cfg.Seed, key)) >= c.cfg.Fraction {
			return
		}
	}
	c.sampled.Add(1)
	verdict, err := g.score(c.det, req)
	if err != nil {
		c.panics.Add(1)
		return
	}
	switch {
	case verdict.Alert == primary.Alert:
		c.agree.Add(1)
	case primary.Alert:
		c.oldOnly.Add(1)
	default:
		c.newOnly.Add(1)
	}
}

// CanaryReport returns the active canary's delta summary; ok is false
// when no canary is running.
func (g *Gateway) CanaryReport() (rep CanaryReport, ok bool) {
	c := g.canary.Load()
	if c == nil {
		return rep, false
	}
	return CanaryReport{
		Version:  c.cfg.Version,
		Hash:     c.cfg.Hash,
		Fraction: c.cfg.Fraction,
		Seed:     c.cfg.Seed,
		Sampled:  c.sampled.Load(),
		Agree:    c.agree.Load(),
		OldOnly:  c.oldOnly.Load(),
		NewOnly:  c.newOnly.Load(),
		Panics:   c.panics.Load(),
	}, true
}

// PromoteCanary installs the canary candidate as the serving detector —
// the same probed, generation-counted swap a reload performs, tagged with
// the candidate's artifact version and hash — and ends the canary.
// Serialized with reloads so a promote cannot interleave with a push.
func (g *Gateway) PromoteCanary() (uint64, error) {
	g.reloadMu.Lock()
	defer g.reloadMu.Unlock()
	c := g.canary.Load()
	if c == nil {
		return 0, fmt.Errorf("gateway: no canary to promote")
	}
	gen, err := g.SwapTagged(c.det, c.cfg.Version, c.cfg.Hash)
	if err != nil {
		return 0, err
	}
	g.canary.Store(nil)
	return gen, nil
}

// AbortCanary discards the active canary, keeping the serving detector.
// Returns false when no canary was running.
func (g *Gateway) AbortCanary() bool {
	return g.canary.Swap(nil) != nil
}
