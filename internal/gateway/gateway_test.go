package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/resilience"
	"psigene/internal/traffic"
)

// stubDetector alerts on a lowercase needle in the decoded payload; it
// keeps the unit tests deterministic and independent of any ruleset.
type stubDetector struct{ needle string }

func (d stubDetector) Name() string { return "stub" }

func (d stubDetector) Inspect(req httpx.Request) ids.Verdict {
	p := strings.ToLower(httpx.DecodeComponent(req.Payload()))
	if d.needle != "" && strings.Contains(p, d.needle) {
		return ids.Verdict{Alert: true, Score: 1, Matched: []string{"stub-1"}}
	}
	return ids.Verdict{}
}

// panicDetector fails on every inspection, standing in for a corrupt
// signature set that slipped past load-time validation.
type panicDetector struct{}

func (panicDetector) Name() string                      { return "panics" }
func (panicDetector) Inspect(httpx.Request) ids.Verdict { panic("corrupt signature state") }

// echoUpstream answers 200 with "echo:<path>?<query>" and a marker header.
func echoUpstream() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Upstream", "echo")
		fmt.Fprintf(w, "echo:%s?%s", r.URL.Path, r.URL.RawQuery)
	}))
}

func mustGateway(t *testing.T, upstream string, det ids.Detector, opts Options) *Gateway {
	t.Helper()
	g, err := New(upstream, det, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func get(g *Gateway, target string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	g.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
	return w
}

// adminGet hits the admin control surface, which lives on its own handler.
func adminGet(h http.Handler, target string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
	return w
}

// adminReload posts a reload for the given model name.
func adminReload(h http.Handler, name string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/-/reload?path="+url.QueryEscape(name), nil))
	return w
}

func TestNewValidation(t *testing.T) {
	if _, err := New("http://h", nil, Options{}); err == nil {
		t.Fatal("nil detector must be rejected")
	}
	if _, err := New("not a url\x00", stubDetector{}, Options{}); err == nil {
		t.Fatal("unparseable upstream must be rejected")
	}
	if _, err := New("/relative/path", stubDetector{}, Options{}); err == nil {
		t.Fatal("relative upstream must be rejected")
	}
}

func TestForwardAndBlock(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{needle: "union select"}, Options{})

	// Benign request passes through with the upstream's body and headers
	// plus the generation stamp.
	w := get(g, "/product.php?id=42")
	if w.Code != http.StatusOK {
		t.Fatalf("benign: status %d", w.Code)
	}
	if got := w.Body.String(); got != "echo:/product.php?id=42" {
		t.Fatalf("benign body %q", got)
	}
	if w.Header().Get("X-Upstream") != "echo" {
		t.Fatal("upstream headers not copied")
	}
	if w.Header().Get("X-Psigene-Gen") != "1" {
		t.Fatalf("generation header %q, want 1", w.Header().Get("X-Psigene-Gen"))
	}

	// Injection is blocked before the upstream sees it.
	w = get(g, "/product.php?id=1%27+UNION+SELECT+password+FROM+users--")
	if w.Code != http.StatusForbidden {
		t.Fatalf("attack: status %d, want 403", w.Code)
	}
	if sig := w.Header().Get("X-Psigene-Signatures"); sig != "stub-1" {
		t.Fatalf("signature header %q", sig)
	}

	s := g.Snapshot()
	if s.Forwarded != 1 || s.Blocked != 1 {
		t.Fatalf("counters: %+v", s)
	}
}

func TestBodyCap(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{MaxBodyBytes: 16})

	w := httptest.NewRecorder()
	g.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/login", strings.NewReader(strings.Repeat("a", 17))))
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", w.Code)
	}
	// Exactly at the cap is fine.
	w = httptest.NewRecorder()
	g.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/login", strings.NewReader(strings.Repeat("a", 16))))
	if w.Code != http.StatusOK {
		t.Fatalf("body at cap: status %d, want 200", w.Code)
	}
	if s := g.Snapshot(); s.TooLarge != 1 || s.BodyErrors != 0 {
		t.Fatalf("cap counters: %+v", s)
	}
}

// brokenBody fails mid-read, like a client abort or malformed chunking.
type brokenBody struct{}

func (brokenBody) Read([]byte) (int, error) { return 0, fmt.Errorf("connection reset mid-body") }

// TestBodyReadErrorIsNot413: a transport failure while reading the body is
// the client's 400, not a 413 size violation, and counts separately.
func TestBodyReadErrorIsNot413(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{})

	w := httptest.NewRecorder()
	g.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/login", brokenBody{}))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("broken body: status %d, want 400", w.Code)
	}
	if s := g.Snapshot(); s.BodyErrors != 1 || s.TooLarge != 0 {
		t.Fatalf("body-error counters: %+v", s)
	}
}

// captureDetector records the last request it inspected.
type captureDetector struct{ last *httpx.Request }

func (captureDetector) Name() string { return "capture" }

func (d captureDetector) Inspect(req httpx.Request) ids.Verdict {
	*d.last = req
	return ids.Verdict{}
}

// TestInboundHost: the scored request's Host comes from the Host header
// (r.Host, port stripped) — origin-form requests have an empty r.URL host.
func TestInboundHost(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	var last httpx.Request
	g := mustGateway(t, up.URL, captureDetector{last: &last}, Options{})

	r := httptest.NewRequest(http.MethodGet, "/p?id=1", nil)
	r.Host = "shop.example.com:8443"
	g.ServeHTTP(httptest.NewRecorder(), r)
	if last.Host != "shop.example.com" {
		t.Fatalf("scored Host %q, want shop.example.com", last.Host)
	}
}

// TestForwardedForChain: the gateway appends the client IP (no port) to an
// existing X-Forwarded-For chain instead of overwriting it.
func TestForwardedForChain(t *testing.T) {
	var seen string
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = r.Header.Get("X-Forwarded-For")
	}))
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{})

	r := httptest.NewRequest(http.MethodGet, "/p", nil) // RemoteAddr 192.0.2.1:1234
	r.Header.Set("X-Forwarded-For", "203.0.113.9")
	g.ServeHTTP(httptest.NewRecorder(), r)
	if seen != "203.0.113.9, 192.0.2.1" {
		t.Fatalf("upstream saw X-Forwarded-For %q, want \"203.0.113.9, 192.0.2.1\"", seen)
	}

	seen = ""
	g.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/p", nil))
	if seen != "192.0.2.1" {
		t.Fatalf("upstream saw X-Forwarded-For %q, want bare client IP", seen)
	}
}

func TestResponseCap(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(make([]byte, 100))
	}))
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{MaxResponseBytes: 64, DisableBreaker: true})
	if w := get(g, "/big"); w.Code != http.StatusBadGateway {
		t.Fatalf("oversized response: status %d, want 502", w.Code)
	}
}

func TestScorePanicPolicies(t *testing.T) {
	up := echoUpstream()
	defer up.Close()

	// Fail-open: the request is forwarded unscored, flagged as degraded.
	open := mustGateway(t, up.URL, panicDetector{}, Options{Policy: FailOpen})
	w := get(open, "/x?a=1")
	if w.Code != http.StatusOK {
		t.Fatalf("fail-open: status %d, want 200", w.Code)
	}
	if w.Header().Get("X-Psigene-Degraded") != "unscored" {
		t.Fatal("fail-open response must be marked degraded")
	}
	if s := open.Snapshot(); s.ScorePanics != 1 || s.FailedOpen != 1 {
		t.Fatalf("fail-open counters: %+v", s)
	}

	// Fail-closed: the request dies with 403.
	closed := mustGateway(t, up.URL, panicDetector{}, Options{Policy: FailClosed})
	if w := get(closed, "/x?a=1"); w.Code != http.StatusForbidden {
		t.Fatalf("fail-closed: status %d, want 403", w.Code)
	}
	if s := closed.Snapshot(); s.ScorePanics != 1 || s.FailedClosed != 1 {
		t.Fatalf("fail-closed counters: %+v", s)
	}
}

func TestAdminEndpoints(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{})
	admin := g.Admin(AdminConfig{ModelDir: t.TempDir()})

	if w := adminGet(admin, "/-/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	if w := adminGet(admin, "/-/readyz"); w.Code != http.StatusOK {
		t.Fatalf("readyz: %d", w.Code)
	}
	if w := adminGet(admin, "/-/nope"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown admin path: %d", w.Code)
	}
	if w := adminGet(admin, "/-/reload"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: %d, want 405", w.Code)
	}
	w := httptest.NewRecorder()
	admin.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/-/reload", nil))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("reload without path: %d, want 400", w.Code)
	}

	var snap Snapshot
	if err := json.Unmarshal(adminGet(admin, "/-/statz").Body.Bytes(), &snap); err != nil {
		t.Fatalf("statz JSON: %v", err)
	}
	if snap.Detector != "stub" || snap.Generation != 1 {
		t.Fatalf("statz: %+v", snap)
	}

	// Admin stays reachable while draining; readyz flips to 503.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if w := adminGet(admin, "/-/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d", w.Code)
	}
	if w := adminGet(admin, "/-/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", w.Code)
	}
	if w := get(g, "/anything"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("proxy while draining: %d, want 503", w.Code)
	}
}

// TestAdminNotOnDataPath pins the listener split: /-/ paths on the proxy
// are ordinary upstream routes (no shadowing, no public control surface).
func TestAdminNotOnDataPath(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{})

	for _, path := range []string{"/-/healthz", "/-/statz", "/-/reload", "/-/app-route"} {
		w := get(g, path)
		if w.Code != http.StatusOK || w.Body.String() != "echo:"+path+"?" {
			t.Fatalf("%s on the data path: %d %q, want proxied echo", path, w.Code, w.Body.String())
		}
	}
	if s := g.Snapshot(); s.Forwarded != 4 {
		t.Fatalf("/-/ requests not proxied: %+v", s)
	}
}

func TestAdminBearerToken(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{})
	admin := g.Admin(AdminConfig{Token: "s3cret"})

	hit := func(auth string) int {
		r := httptest.NewRequest(http.MethodGet, "/-/statz", nil)
		if auth != "" {
			r.Header.Set("Authorization", auth)
		}
		w := httptest.NewRecorder()
		admin.ServeHTTP(w, r)
		return w.Code
	}
	if code := hit(""); code != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", code)
	}
	if code := hit("Bearer wrong"); code != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d, want 401", code)
	}
	if code := hit("s3cret"); code != http.StatusUnauthorized {
		t.Fatalf("bare token without scheme: %d, want 401", code)
	}
	if code := hit("Bearer s3cret"); code != http.StatusOK {
		t.Fatalf("correct token: %d, want 200", code)
	}
}

// trainedModelFile trains a small model once and saves it for reload tests.
var (
	trainedOnce sync.Once
	trainedDir  string
	trainedPath string
	trainedErr  error
)

func trainedModel(t *testing.T) string {
	t.Helper()
	trainedOnce.Do(func() {
		attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), 11).Requests(1200)
		benign := traffic.NewGenerator(12).Requests(1500)
		m, err := core.Train(attacks, benign, core.Config{})
		if err != nil {
			trainedErr = err
			return
		}
		// Not t.TempDir(): the model outlives the first test that trains
		// it, so it needs a directory with package-test lifetime.
		dir, err := os.MkdirTemp("", "gateway-model-")
		if err != nil {
			trainedErr = err
			return
		}
		trainedDir = dir
		trainedPath = filepath.Join(dir, "model.json")
		trainedErr = m.SaveFile(trainedPath)
	})
	if trainedErr != nil {
		t.Fatalf("training model: %v", trainedErr)
	}
	return trainedPath
}

func TestMain(m *testing.M) {
	code := m.Run()
	if trainedDir != "" {
		os.RemoveAll(trainedDir)
	}
	os.Exit(code)
}

func TestReloadSwapsGeneration(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{})
	path := trainedModel(t)
	admin := g.Admin(AdminConfig{ModelDir: filepath.Dir(path)})

	w := adminReload(admin, filepath.Base(path))
	if w.Code != http.StatusOK {
		t.Fatalf("reload: %d: %s", w.Code, w.Body.String())
	}
	det, gen := g.Detector()
	if gen != 2 {
		t.Fatalf("generation %d, want 2", gen)
	}
	if det.Name() == "stub" {
		t.Fatal("detector not swapped")
	}
	// Reloaded models are artifact-tagged: generation, then the version
	// ("file:<name>" for single-file models) and the content hash.
	gotGen := get(g, "/p?id=1").Header().Get("X-Psigene-Gen")
	if !strings.HasPrefix(gotGen, "2 file:") || !strings.Contains(gotGen, " sha256:") {
		t.Fatalf("request scored by generation %q, want 2 with model tags", gotGen)
	}
}

func TestFailedReloadKeepsOldDetector(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{needle: "union select"}, Options{})

	// A corrupt model file: valid JSON prefix, truncated mid-document.
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "corrupt.json"), `{"version": 1, "features": [{"na`)
	var log strings.Builder
	admin := g.Admin(AdminConfig{ModelDir: dir, Log: &log})

	for _, name := range []string{"corrupt.json", "missing.json"} {
		w := adminReload(admin, name)
		if w.Code != http.StatusInternalServerError {
			t.Fatalf("reload %s: %d, want 500", name, w.Code)
		}
		// Loader detail goes to the admin log, not the response: the
		// endpoint must not be a file-existence/parse oracle.
		for _, leak := range []string{dir, "JSON", "no such file"} {
			if strings.Contains(w.Body.String(), leak) {
				t.Fatalf("reload %s echoed loader detail %q: %s", name, leak, w.Body.String())
			}
		}
	}
	if !strings.Contains(log.String(), "corrupt.json") || !strings.Contains(log.String(), "missing.json") {
		t.Fatalf("reload failures not logged:\n%s", log.String())
	}
	// A detector that panics on probe is rejected before the swap.
	if _, err := g.Swap(panicDetector{}); err == nil {
		t.Fatal("panicking candidate must be rejected by probe")
	}

	// The original detector still serves, on its original generation.
	det, gen := g.Detector()
	if det.Name() != "stub" || gen != 1 {
		t.Fatalf("detector %q gen %d after failed reloads, want stub gen 1", det.Name(), gen)
	}
	if w := get(g, "/p?id=1+union+select+2"); w.Code != http.StatusForbidden {
		t.Fatalf("old detector no longer blocking: %d", w.Code)
	}
	if s := g.Snapshot(); s.ReloadFailures != 3 || s.Reloads != 0 {
		t.Fatalf("reload counters: %+v", s)
	}
}

// TestReloadConfinedToModelDir: the ?path= parameter is a name inside the
// configured model directory, never an arbitrary filesystem path.
func TestReloadConfinedToModelDir(t *testing.T) {
	up := echoUpstream()
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{})
	path := trainedModel(t)

	admin := g.Admin(AdminConfig{ModelDir: t.TempDir()})
	for _, name := range []string{path, "../" + filepath.Base(path), "/etc/passwd", ".."} {
		if w := adminReload(admin, name); w.Code != http.StatusBadRequest {
			t.Fatalf("escaping reload path %q: %d, want 400", name, w.Code)
		}
	}
	// With no model dir configured, reload is off entirely.
	noDir := g.Admin(AdminConfig{})
	if w := adminReload(noDir, "model.json"); w.Code != http.StatusForbidden {
		t.Fatalf("reload without model dir: %d, want 403", w.Code)
	}
	if _, gen := g.Detector(); gen != 1 {
		t.Fatalf("generation moved to %d on rejected reloads", gen)
	}
}

func TestMidFlightReloadFinishesOnStartingDetector(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		if r.URL.Path == "/slow" {
			<-release
		}
		fmt.Fprint(w, "done")
	}))
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{})

	first := make(chan string)
	go func() {
		w := get(g, "/slow?id=1")
		first <- w.Header().Get("X-Psigene-Gen")
	}()
	<-entered // request 1 is mid-flight, scored by generation 1

	if _, err := g.Swap(stubDetector{needle: "evil"}); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	// A request admitted after the swap runs on generation 2 while the
	// first request is still in flight on generation 1.
	if w := get(g, "/fast?id=1"); w.Header().Get("X-Psigene-Gen") != "2" {
		t.Fatalf("post-swap request on generation %q, want 2", w.Header().Get("X-Psigene-Gen"))
	}
	close(release)
	if gen := <-first; gen != "1" {
		t.Fatalf("in-flight request finished on generation %q, want 1", gen)
	}
}

func TestBreakerOpensOnDeadUpstream(t *testing.T) {
	up := echoUpstream()
	up.Close() // dead: every round trip is a transport error
	g := mustGateway(t, up.URL, stubDetector{}, Options{
		BreakerThreshold: 3, BreakerCooldown: 2, UpstreamTimeout: 500 * time.Millisecond,
	})

	// First 3 requests fail through to the upstream and trip the breaker.
	for i := 0; i < 3; i++ {
		if w := get(g, fmt.Sprintf("/r?i=%d", i)); w.Code != http.StatusBadGateway {
			t.Fatalf("request %d: %d, want 502", i, w.Code)
		}
	}
	// The next 2 are rejected locally while the breaker cools down.
	for i := 0; i < 2; i++ {
		w := get(g, fmt.Sprintf("/r?i=%d", 10+i))
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("cooldown request %d: %d, want 503", i, w.Code)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatal("breaker rejection must carry Retry-After")
		}
	}
	s := g.Snapshot()
	if s.UpstreamErrors != 3 || s.BreakerRejected != 2 {
		t.Fatalf("counters: %+v", s)
	}
	// Cooldown budget spent; the next Allow flips to half-open and probes.
	if s.Breaker == nil || s.Breaker.State != resilience.BreakerOpen || s.Breaker.Remaining != 0 {
		t.Fatalf("breaker state: %+v", s.Breaker)
	}
}

func TestBreakerRecovers(t *testing.T) {
	var dead bool
	var mu sync.Mutex
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		d := dead
		mu.Unlock()
		if d {
			panic(http.ErrAbortHandler) // connection reset
		}
		fmt.Fprint(w, "ok")
	}))
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{
		BreakerThreshold: 2, BreakerCooldown: 1, UpstreamTimeout: 2 * time.Second,
	})

	mu.Lock()
	dead = true
	mu.Unlock()
	for i := 0; i < 2; i++ {
		get(g, "/r") // transport failures: breaker trips
	}
	if w := get(g, "/r"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: %d, want 503", w.Code)
	}
	mu.Lock()
	dead = false
	mu.Unlock()
	// Cooldown spent, the half-open probe succeeds and the breaker closes.
	if w := get(g, "/r"); w.Code != http.StatusOK {
		t.Fatalf("half-open probe: %d, want 200", w.Code)
	}
	if w := get(g, "/r"); w.Code != http.StatusOK {
		t.Fatalf("closed again: %d, want 200", w.Code)
	}
}

func TestOverloadSheds(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		fmt.Fprint(w, "slow")
	}))
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{MaxInFlight: 2, RetryAfter: 7})

	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			done <- get(g, "/slow").Code
		}()
	}
	<-entered
	<-entered // both slots held mid-upstream

	w := get(g, "/shed-me")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") != "7" {
		t.Fatalf("Retry-After %q, want 7", w.Header().Get("Retry-After"))
	}
	close(release)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("admitted request finished %d", code)
		}
	}
	if s := g.Snapshot(); s.Shed != 1 || s.Forwarded != 2 {
		t.Fatalf("counters: %+v", s)
	}
}

func TestDrainWaitsForInFlight(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		fmt.Fprint(w, "ok")
	}))
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{MaxInFlight: 4})

	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			done <- get(g, "/inflight").Code
		}()
	}
	<-entered
	<-entered

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- g.Drain(ctx)
	}()

	// Wait for the drain flag before poking the data path: a request that
	// slipped in pre-drain would block on the gated upstream forever.
	admin := g.Admin(AdminConfig{})
	for adminGet(admin, "/-/readyz").Code != http.StatusServiceUnavailable {
	}
	if w := get(g, "/late"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request admitted: %d", w.Code)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with requests still in flight", err)
	default:
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Both in-flight requests completed; none were dropped.
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("in-flight request finished %d during drain", code)
		}
	}
}

func TestDrainTimeout(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	}))
	defer up.Close()
	g := mustGateway(t, up.URL, stubDetector{}, Options{MaxInFlight: 2})

	go get(g, "/stuck")
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired
	if err := g.Drain(ctx); err == nil {
		t.Fatal("Drain must report an expired context")
	}
	close(release)
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
