package gateway

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"

	"psigene/internal/admission"
	"psigene/internal/core"
	"psigene/internal/feature"
	"psigene/internal/ids"
	"psigene/internal/resilience"
)

// AdminConfig configures the control surface returned by Admin.
type AdminConfig struct {
	// Token, when non-empty, is a bearer token required on every admin
	// request (`Authorization: Bearer <token>`). Compared in constant
	// time; wrong or missing credentials answer 401.
	Token string
	// ModelDir confines reloads and canary starts: their `?path=`
	// parameter is a local name (model file or artifact directory)
	// resolved inside this directory, never an arbitrary filesystem
	// path. Empty disables /-/reload and /-/canary/start entirely.
	ModelDir string
	// DenyDir confines denylist reloads the same way ModelDir confines
	// model reloads. Empty disables POST /-/denylist/reload.
	DenyDir string
	// Log receives reload failure detail. Loader errors are logged here,
	// not echoed to clients — the error text is a file-existence and
	// parse oracle. Default io.Discard.
	Log io.Writer
}

// Admin returns the /-/ control-surface handler. It is deliberately NOT
// mounted on the proxy's data path: serve it on a separate listener
// (psigened defaults to loopback-only) so public traffic can never reach
// reload or statz and no upstream route is shadowed by the /-/ prefix.
// The endpoints bypass admission control on purpose: health checks and
// reloads must work while the data path is saturated or draining.
func (g *Gateway) Admin(cfg AdminConfig) http.Handler {
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	return &adminHandler{g: g, cfg: cfg}
}

type adminHandler struct {
	g   *Gateway
	cfg AdminConfig
}

func (h *adminHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.cfg.Token != "" && !h.authorized(r) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="psigened admin"`)
		http.Error(w, "unauthorized", http.StatusUnauthorized)
		return
	}
	g := h.g
	switch r.URL.Path {
	case "/-/healthz":
		// Liveness: the process is up and serving this handler.
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case "/-/readyz":
		// Readiness: drop out of rotation while draining.
		if g.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	case "/-/reload":
		h.serveReload(w, r)
	case "/-/statz":
		writeJSON(w, g.Snapshot())
	case "/-/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetrics(w, g.Snapshot())
	case "/-/canary":
		rep, ok := g.CanaryReport()
		if !ok {
			http.Error(w, "no canary active", http.StatusNotFound)
			return
		}
		writeJSON(w, rep)
	case "/-/canary/start":
		h.serveCanaryStart(w, r)
	case "/-/denylist":
		ctrl := g.opts.Admission
		if ctrl == nil {
			http.Error(w, "admission control not configured", http.StatusNotFound)
			return
		}
		writeJSON(w, ctrl.Stats())
	case "/-/denylist/reload":
		h.serveDenylistReload(w, r)
	case "/-/canary/promote":
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		gen, err := g.PromoteCanary()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		det, _ := g.Detector()
		writeJSON(w, map[string]any{"generation": gen, "detector": det.Name()})
	case "/-/canary/abort":
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if !g.AbortCanary() {
			http.Error(w, "no canary active", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"aborted": true})
	default:
		http.NotFound(w, r)
	}
}

// authorized checks the bearer token in constant time.
func (h *adminHandler) authorized(r *http.Request) bool {
	const prefix = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) <= len(prefix) || auth[:len(prefix)] != prefix {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(h.cfg.Token)) == 1
}

// serveReload swaps in a model named by ?path=, confined to ModelDir.
// Failure detail goes to the admin log only; the response carries a
// generic rejection so the endpoint is not a file-existence/parse oracle.
func (h *adminHandler) serveReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if h.cfg.ModelDir == "" {
		http.Error(w, "reload disabled: no model dir configured", http.StatusForbidden)
		return
	}
	name := r.URL.Query().Get("path")
	if name == "" {
		http.Error(w, "reload needs ?path=<name.json>", http.StatusBadRequest)
		return
	}
	// The parameter is a name inside ModelDir, not a path: absolute paths
	// and ..-traversal are rejected before touching the filesystem.
	if !filepath.IsLocal(name) {
		http.Error(w, "reload path must be a local name inside the model dir", http.StatusBadRequest)
		return
	}
	gen, err := h.g.ReloadModel(filepath.Join(h.cfg.ModelDir, name))
	if err != nil {
		fmt.Fprintf(h.cfg.Log, "psigened: reload %q: %v\n", name, err)
		http.Error(w, "reload rejected; previous model still serving (see server log)", http.StatusInternalServerError)
		return
	}
	det, _ := h.g.Detector()
	writeJSON(w, map[string]any{"generation": gen, "detector": det.Name()})
}

// serveDenylistReload swaps the admission controller's denylist from a
// file named by ?path=, confined to DenyDir — the validate-probe-swap
// idiom of model reloads applied to the denied-address trie. A file with
// any malformed CIDR line is rejected whole (a silently dropped entry is
// an address quietly allowed through), the previous trie keeps serving,
// and the response is a generic 400: parse detail goes to the admin log
// only, never echoed, so the endpoint is not a file-content oracle.
func (h *adminHandler) serveDenylistReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	ctrl := h.g.opts.Admission
	if ctrl == nil {
		http.Error(w, "admission control not configured", http.StatusForbidden)
		return
	}
	if h.cfg.DenyDir == "" {
		http.Error(w, "denylist reload disabled: no deny dir configured", http.StatusForbidden)
		return
	}
	name := r.URL.Query().Get("path")
	if name == "" {
		http.Error(w, "denylist reload needs ?path=<name>", http.StatusBadRequest)
		return
	}
	if !filepath.IsLocal(name) {
		http.Error(w, "denylist path must be a local name inside the deny dir", http.StatusBadRequest)
		return
	}
	if err := ctrl.ReloadDenylistFile(filepath.Join(h.cfg.DenyDir, name)); err != nil {
		h.g.stats.denyReloadFails.Add(1)
		fmt.Fprintf(h.cfg.Log, "psigened: denylist reload %q: %v\n", name, err)
		http.Error(w, "denylist rejected; previous denylist still serving (see server log)", http.StatusBadRequest)
		return
	}
	set, gen := ctrl.Denylist()
	writeJSON(w, map[string]any{"entries": set.Len(), "generation": gen})
}

// serveCanaryStart begins shadow-scoring with a candidate named by
// ?path= (a model file or artifact directory inside ModelDir, same
// confinement as reload), at ?fraction= of traffic (default 1) under
// ?seed=. Failure detail is logged, not echoed, for the same
// oracle-avoidance reason as reload.
func (h *adminHandler) serveCanaryStart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if h.cfg.ModelDir == "" {
		http.Error(w, "canary disabled: no model dir configured", http.StatusForbidden)
		return
	}
	name := r.URL.Query().Get("path")
	if name == "" {
		http.Error(w, "canary needs ?path=<name>", http.StatusBadRequest)
		return
	}
	if !filepath.IsLocal(name) {
		http.Error(w, "canary path must be a local name inside the model dir", http.StatusBadRequest)
		return
	}
	cfg := CanaryConfig{Fraction: 1}
	if f := r.URL.Query().Get("fraction"); f != "" {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			http.Error(w, "bad fraction", http.StatusBadRequest)
			return
		}
		cfg.Fraction = v
	}
	if s := r.URL.Query().Get("seed"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			http.Error(w, "bad seed", http.StatusBadRequest)
			return
		}
		cfg.Seed = v
	}
	m, man, err := core.LoadAny(filepath.Join(h.cfg.ModelDir, name))
	if err != nil {
		fmt.Fprintf(h.cfg.Log, "psigened: canary %q: %v\n", name, err)
		http.Error(w, "canary rejected; no candidate loaded (see server log)", http.StatusInternalServerError)
		return
	}
	cfg.Version, cfg.Hash = man.Version, man.ModelSHA256
	if err := h.g.StartCanary(m, cfg); err != nil {
		fmt.Fprintf(h.cfg.Log, "psigened: canary %q: %v\n", name, err)
		http.Error(w, "canary rejected (see server log)", http.StatusConflict)
		return
	}
	writeJSON(w, map[string]any{"canary": man.Version, "fraction": cfg.Fraction, "seed": cfg.Seed})
}

// ReloadModel loads a model — a single file or a versioned artifact
// directory (hash-verified, see core.LoadAny) — validates it, probes it,
// and only then swaps it in, tagged with the artifact version and content
// hash from its manifest. Every failure path leaves the previous detector
// serving — a corrupt or half-written model push is a logged non-event,
// not an outage. Reloads are serialized so concurrent pushes cannot
// interleave load and swap. Returns the new generation on success.
func (g *Gateway) ReloadModel(path string) (uint64, error) {
	g.reloadMu.Lock()
	defer g.reloadMu.Unlock()
	m, man, err := core.LoadAny(path)
	if err != nil {
		g.stats.reloadFailures.Add(1)
		return 0, fmt.Errorf("gateway: reload rejected: %w", err)
	}
	return g.SwapTagged(m, man.Version, man.ModelSHA256)
}

// Swap installs a new detector after probing it, untagged. The generation
// counter increments only on successful swaps, so X-Psigene-Gen response
// headers prove which signature set scored a given request.
func (g *Gateway) Swap(det ids.Detector) (uint64, error) {
	return g.SwapTagged(det, "", "")
}

// SwapTagged installs a new detector after probing it, recording the
// artifact version and content hash it came from so X-Psigene-Gen,
// /-/statz and /-/metrics identify the serving model.
func (g *Gateway) SwapTagged(det ids.Detector, version, hash string) (uint64, error) {
	if det == nil {
		g.stats.reloadFailures.Add(1)
		return 0, fmt.Errorf("gateway: reload rejected: nil detector")
	}
	if err := probe(det); err != nil {
		g.stats.reloadFailures.Add(1)
		return 0, fmt.Errorf("gateway: reload rejected: %w", err)
	}
	gen := g.gen.Add(1)
	g.state.Store(&detectorState{det: det, gen: gen, version: version, hash: hash})
	g.stats.reloads.Add(1)
	return gen, nil
}

// Drain stops admitting new requests and waits for in-flight ones to
// finish by acquiring every semaphore token: once all MaxInFlight tokens
// are held, nothing is mid-request. Returns ctx.Err() if the context
// expires first; already-admitted requests keep running either way.
func (g *Gateway) Drain(ctx context.Context) error {
	g.draining.Store(true)
	for i := 0; i < cap(g.sem); i++ {
		select {
		case g.sem <- struct{}{}:
		case <-ctx.Done():
			// Release what we grabbed so a later Drain can retry.
			for ; i > 0; i-- {
				<-g.sem
			}
			return ctx.Err()
		}
	}
	for i := 0; i < cap(g.sem); i++ {
		<-g.sem
	}
	return nil
}

// Snapshot is the /-/statz document: counters, breaker state, and the
// scoring-latency window summarized with the same percentile machinery
// the evaluation harness uses.
type Snapshot struct {
	Generation      uint64                      `json:"generation"`
	Detector        string                      `json:"detector"`
	ModelVersion    string                      `json:"modelVersion,omitempty"`
	ModelSHA256     string                      `json:"modelSha256,omitempty"`
	Policy          string                      `json:"policy"`
	Draining        bool                        `json:"draining"`
	Total           int64                       `json:"total"`
	Shed            int64                       `json:"shed"`
	TooLarge        int64                       `json:"tooLarge"`
	BodyErrors      int64                       `json:"bodyErrors"`
	Blocked         int64                       `json:"blocked"`
	Forwarded       int64                       `json:"forwarded"`
	ScorePanics     int64                       `json:"scorePanics"`
	FailedOpen      int64                       `json:"failedOpen"`
	FailedClosed    int64                       `json:"failedClosed"`
	UpstreamErrors  int64                       `json:"upstreamErrors"`
	BreakerRejected int64                       `json:"breakerRejected"`
	BudgetSpent     int64                       `json:"budgetSpent"`
	Reloads         int64                       `json:"reloads"`
	ReloadFailures  int64                       `json:"reloadFailures"`
	Breaker         *resilience.BreakerSnapshot `json:"breaker,omitempty"`
	ScoringLatency  ids.LatencyStats            `json:"scoringLatency"`
	Canary          *CanaryReport               `json:"canary,omitempty"`
	// Scored counts requests that reached the detector; Prefilter, present
	// when the serving detector exposes the staged fast path, reports its
	// regex-gating effectiveness. AllocsPerRequest is the process's heap
	// allocation growth since the gateway was built divided by Scored —
	// approximate (the whole process allocates, not only scoring) but a
	// faithful trend gauge for the allocation-free serving contract.
	Scored           int64                   `json:"scored"`
	Prefilter        *feature.PrefilterStats `json:"prefilter,omitempty"`
	AllocsPerRequest float64                 `json:"allocsPerRequest"`
	// Per-client admission outcomes (see internal/admission): Denied are
	// denylist 403s, RateLimited and PenaltyBoxed are the two 429 shapes,
	// AdmissionPanics are controller failures that failed open to the
	// global semaphore, DenyReloadFailures are rejected denylist pushes.
	// Admission carries the controller's own counters (LRU occupancy,
	// evictions, denylist size and generation) when admission is enabled.
	Denied             int64            `json:"denied"`
	RateLimited        int64            `json:"rateLimited"`
	PenaltyBoxed       int64            `json:"penaltyBoxed"`
	AdmissionPanics    int64            `json:"admissionPanics"`
	DenyReloadFailures int64            `json:"denyReloadFailures"`
	Admission          *admission.Stats `json:"admission,omitempty"`
}

// prefilterReporter is implemented by detectors that expose staged
// fast-path counters (core.Model does).
type prefilterReporter interface {
	PrefilterStats() feature.PrefilterStats
}

// Snapshot assembles the current stats document.
func (g *Gateway) Snapshot() Snapshot {
	state := g.state.Load()
	s := Snapshot{
		Generation:      state.gen,
		Detector:        state.det.Name(),
		ModelVersion:    state.version,
		ModelSHA256:     state.hash,
		Policy:          g.opts.Policy.String(),
		Draining:        g.draining.Load(),
		Total:           g.stats.total.Load(),
		Shed:            g.stats.shed.Load(),
		TooLarge:        g.stats.tooLarge.Load(),
		BodyErrors:      g.stats.bodyErrors.Load(),
		Blocked:         g.stats.blocked.Load(),
		Forwarded:       g.stats.forwarded.Load(),
		ScorePanics:     g.stats.scorePanics.Load(),
		FailedOpen:      g.stats.failedOpen.Load(),
		FailedClosed:    g.stats.failedClosed.Load(),
		UpstreamErrors:  g.stats.upstreamErrors.Load(),
		BreakerRejected: g.stats.breakerRejected.Load(),
		BudgetSpent:     g.stats.budgetSpent.Load(),
		Reloads:         g.stats.reloads.Load(),
		ReloadFailures:  g.stats.reloadFailures.Load(),
		Scored:          g.stats.scored.Load(),
		ScoringLatency:  ids.SummarizeLatency(g.latencyWindow()),

		Denied:             g.stats.denied.Load(),
		RateLimited:        g.stats.rateLimited.Load(),
		PenaltyBoxed:       g.stats.penaltyBoxed.Load(),
		AdmissionPanics:    g.stats.admissionPanics.Load(),
		DenyReloadFailures: g.stats.denyReloadFails.Load(),
	}
	if ctrl := g.opts.Admission; ctrl != nil {
		as := ctrl.Stats()
		s.Admission = &as
	}
	if pr, ok := state.det.(prefilterReporter); ok {
		ps := pr.PrefilterStats()
		s.Prefilter = &ps
	}
	if s.Scored > 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.AllocsPerRequest = float64(ms.Mallocs-g.baseMallocs) / float64(s.Scored)
	}
	if g.breaker != nil {
		g.mu.Lock()
		snap := g.breaker.Snapshot()
		g.mu.Unlock()
		s.Breaker = &snap
	}
	if rep, ok := g.CanaryReport(); ok {
		s.Canary = &rep
	}
	return s
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
