package faultify

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func backend() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/api") {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"results":[{"id":1}],"next":null}`))
			return
		}
		_, _ = w.Write([]byte("<html><body><pre>http://x/a.php?id=1</pre></body></html>"))
	})
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("GET /advisory/%d", i)
	}
	return out
}

func TestPlanDeterministicAndSeedSensitive(t *testing.T) {
	cfg := Config{Seed: 42, Rates: Uniform(0.3)}
	a, b := New(cfg), New(cfg)
	ks := keys(500)
	sa, sb := a.Schedule(ks), b.Schedule(ks)
	for _, k := range ks {
		if sa[k] != sb[k] {
			t.Fatalf("same seed, different plan for %s: %v vs %v", k, sa[k], sb[k])
		}
	}
	c := New(Config{Seed: 43, Rates: Uniform(0.3)})
	diff := 0
	for _, k := range ks {
		if c.Plan(k) != sa[k] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPlanRates(t *testing.T) {
	in := New(Config{Seed: 7, Rates: Uniform(0.30)})
	ks := keys(4000)
	faulted := len(in.AfflictedKeys(ks))
	got := float64(faulted) / float64(len(ks))
	if got < 0.25 || got > 0.35 {
		t.Fatalf("afflicted fraction %.3f, want ~0.30", got)
	}
	none := New(Config{Seed: 7})
	if n := len(none.AfflictedKeys(ks)); n != 0 {
		t.Fatalf("zero-rate injector afflicted %d keys", n)
	}
}

// pickKey finds a key whose plan is the wanted class, by appending a
// counter — deterministic given the seed.
func pickKey(t *testing.T, in *Injector, want Class) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("GET /probe/%d", i)
		if in.Plan(k) == want {
			return strings.TrimPrefix(k, "GET ")
		}
	}
	t.Fatalf("no key maps to class %v", want)
	return ""
}

func TestWrapFaultClasses(t *testing.T) {
	in := New(Config{Seed: 11, Rates: Uniform(0.9), Repeats: -1})
	srv := httptest.NewServer(in.Wrap(backend()))
	defer srv.Close()
	client := srv.Client()

	t.Run("500", func(t *testing.T) {
		resp, err := client.Get(srv.URL + pickKey(t, in, Err500))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500", resp.StatusCode)
		}
	})
	t.Run("429", func(t *testing.T) {
		resp, err := client.Get(srv.URL + pickKey(t, in, RateLimit))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Fatalf("Retry-After = %q, want 1", ra)
		}
	})
	t.Run("reset", func(t *testing.T) {
		resp, err := client.Get(srv.URL + pickKey(t, in, Reset))
		if err == nil {
			resp.Body.Close()
			t.Fatal("reset fault: want transport error")
		}
	})
	t.Run("truncate", func(t *testing.T) {
		resp, err := client.Get(srv.URL + pickKey(t, in, Truncate))
		if err != nil {
			return // aborted before headers on some transports: also a failure
		}
		defer resp.Body.Close()
		if _, err := io.ReadAll(resp.Body); err == nil {
			t.Fatal("truncate fault: body read should fail short of Content-Length")
		}
	})
	t.Run("garble-html", func(t *testing.T) {
		resp, err := client.Get(srv.URL + pickKey(t, in, Garble))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(b), "</html>") {
			t.Fatalf("garbled body still well-formed: %q", b)
		}
	})
	t.Run("hang", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+pickKey(t, in, Hang), nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			t.Fatal("hang fault: want context deadline error")
		}
	})
}

func TestGarbleJSONUnparseable(t *testing.T) {
	in := New(Config{Seed: 3, Rates: map[Class]float64{Garble: 1}, Repeats: -1})
	srv := httptest.NewServer(in.Wrap(backend()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/search?offset=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v any
	if json.Unmarshal(b, &v) == nil {
		t.Fatalf("garbled JSON still parses: %q", b)
	}
}

func TestRepeatsRecovery(t *testing.T) {
	in := New(Config{Seed: 5, Rates: map[Class]float64{Err500: 1}, Repeats: 2})
	srv := httptest.NewServer(in.Wrap(backend()))
	defer srv.Close()
	statuses := []int{}
	for i := 0; i < 4; i++ {
		resp, err := srv.Client().Get(srv.URL + "/advisory/1")
		if err != nil {
			t.Fatal(err)
		}
		statuses = append(statuses, resp.StatusCode)
		resp.Body.Close()
	}
	want := []int{500, 500, 200, 200}
	for i := range want {
		if statuses[i] != want[i] {
			t.Fatalf("attempt statuses = %v, want %v", statuses, want)
		}
	}
	st := in.Snapshot()
	if st.Requests != 4 || st.Passed != 2 || st.Injected[Err500] != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Total() != 2 {
		t.Fatalf("Total() = %d, want 2", st.Total())
	}
}

func TestPersistentFault(t *testing.T) {
	in := New(Config{Seed: 5, Rates: map[Class]float64{Err500: 1}, Repeats: -1})
	srv := httptest.NewServer(in.Wrap(backend()))
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := srv.Client().Get(srv.URL + "/advisory/1")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code != 500 {
			t.Fatalf("attempt %d: status %d, want persistent 500", i+1, code)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Requests: 3, Passed: 2, Injected: map[Class]int{Err500: 1}}
	if got := s.String(); !strings.Contains(got, "500=1") || !strings.Contains(got, "requests=3") {
		t.Fatalf("String() = %q", got)
	}
}
