// Package faultify is a deterministic, seeded fault-injection middleware
// for the portal simulators. pSigene's first phase is a three-month crawl
// of flaky public sites, so the crawler's resilience machinery (retries,
// backoff, circuit breakers, quarantine, checkpointing) needs an upstream
// that misbehaves on demand — reproducibly, so the chaos tests are golden
// tests rather than flaky ones.
//
// The injector wraps any http.Handler. Whether a request is faulted is a
// pure function of (seed, request key, per-key attempt number): the key is
// "METHOD path?query", so the schedule is independent of request ordering,
// host, and port, and a crawl killed and resumed against the same server
// replays the same faults. Each afflicted key fails its first Repeats
// attempts with its assigned fault class and succeeds afterwards (Repeats
// < 0 means it never recovers), which models both transient and hard
// upstream failures.
//
// The package deliberately uses no wall clock and no math/rand — it is
// under psigenelint's walltime/randsource checks — so every schedule is
// replayable from the seed alone.
package faultify

import (
	"bytes"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"psigene/internal/resilience"
)

// Class is one fault class.
type Class int

// Fault classes, in schedule order. The cumulative-rate walk in Plan uses
// this order, so it is part of the deterministic contract.
const (
	// None passes the request through untouched.
	None Class = iota
	// Err500 answers 500 Internal Server Error.
	Err500
	// RateLimit answers 429 Too Many Requests with a Retry-After header.
	RateLimit
	// Hang never answers: the handler blocks until the client gives up
	// (request-context cancellation), modeling a stalled upstream.
	Hang
	// Reset aborts the connection without writing a response (the net/http
	// ErrAbortHandler path), modeling a TCP reset.
	Reset
	// Truncate advertises the full Content-Length, writes half the body,
	// and aborts the connection — a mid-transfer failure.
	Truncate
	// Garble serves a 200 whose body is deterministically mangled into
	// malformed HTML/JSON (closing tags and braces cut off).
	Garble
)

var classNames = map[Class]string{
	None:      "none",
	Err500:    "500",
	RateLimit: "429",
	Hang:      "hang",
	Reset:     "reset",
	Truncate:  "truncate",
	Garble:    "garble",
}

// String names the class for stats and logs.
func (c Class) String() string {
	if n, ok := classNames[c]; ok {
		return n
	}
	return "class(" + strconv.Itoa(int(c)) + ")"
}

// Classes returns the fault classes in schedule order.
func Classes() []Class {
	return []Class{Err500, RateLimit, Hang, Reset, Truncate, Garble}
}

// Config tunes an Injector. The zero value injects nothing.
type Config struct {
	// Seed drives the per-key fault assignment. Same seed, same schedule.
	Seed int64
	// Rates maps each fault class to the fraction of request keys it
	// afflicts, e.g. {Err500: 0.05, Garble: 0.05}. Fractions are of the
	// key space, not of requests: an afflicted key faults its first
	// Repeats attempts and then recovers.
	Rates map[Class]float64
	// Repeats is how many attempts per key the assigned fault fires on
	// before the key recovers. 0 means 1; negative means the key never
	// recovers (a hard failure, exercising quarantine).
	Repeats int
	// RetryAfter is the value of the Retry-After header on RateLimit
	// responses, in seconds. 0 means 1.
	RetryAfter int
}

// Uniform spreads a total fault rate evenly across all fault classes.
func Uniform(total float64) map[Class]float64 {
	classes := Classes()
	out := make(map[Class]float64, len(classes))
	for _, c := range classes {
		out[c] = total / float64(len(classes))
	}
	return out
}

// Stats is a snapshot of an injector's activity.
type Stats struct {
	// Requests counts every request seen; Passed those served untouched.
	Requests, Passed int
	// Injected counts injected faults per class.
	Injected map[Class]int
}

// Total sums injected faults across classes.
func (s Stats) Total() int {
	n := 0
	for _, c := range Classes() {
		n += s.Injected[c]
	}
	return n
}

// String renders the snapshot as "requests=N passed=M 500=a 429=b ...".
func (s Stats) String() string {
	var b bytes.Buffer
	b.WriteString("requests=" + strconv.Itoa(s.Requests) + " passed=" + strconv.Itoa(s.Passed))
	for _, c := range Classes() {
		if s.Injected[c] > 0 {
			b.WriteString(" " + c.String() + "=" + strconv.Itoa(s.Injected[c]))
		}
	}
	return b.String()
}

// Injector decides, deterministically, which requests fault and how.
type Injector struct {
	cfg     Config
	classes []Class
	cum     []float64 // cumulative rate thresholds, aligned with classes

	mu       sync.Mutex
	attempts map[string]int
	injected map[Class]int
	requests int
	passed   int
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	if cfg.Repeats == 0 {
		cfg.Repeats = 1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 1
	}
	in := &Injector{
		cfg:      cfg,
		attempts: make(map[string]int),
		injected: make(map[Class]int),
	}
	// Fixed class order: the cumulative walk must not depend on map
	// iteration order.
	total := 0.0
	for _, c := range Classes() {
		r := cfg.Rates[c]
		if r <= 0 {
			continue
		}
		total += r
		in.classes = append(in.classes, c)
		in.cum = append(in.cum, total)
	}
	return in
}

// Plan returns the fault class assigned to a request key ("METHOD
// path?query"), or None. The assignment is a pure function of the seed and
// the key, so schedules are replayable and order-independent.
func (in *Injector) Plan(key string) Class {
	if len(in.classes) == 0 {
		return None
	}
	u := resilience.UnitFloat(resilience.HashKey(in.cfg.Seed, key))
	for i, c := range in.classes {
		if u < in.cum[i] {
			return c
		}
	}
	return None
}

// Schedule maps each key to its assigned class — the replayable fault
// schedule for a known URL set, for golden tests and debugging.
func (in *Injector) Schedule(keys []string) map[string]Class {
	out := make(map[string]Class, len(keys))
	for _, k := range keys {
		out[k] = in.Plan(k)
	}
	return out
}

// AfflictedKeys filters keys down to those assigned any fault, sorted.
func (in *Injector) AfflictedKeys(keys []string) []string {
	var out []string
	for _, k := range keys {
		if in.Plan(k) != None {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns current stats.
func (in *Injector) Snapshot() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	inj := make(map[Class]int, len(in.injected))
	for c, n := range in.injected {
		inj[c] = n
	}
	return Stats{Requests: in.requests, Passed: in.passed, Injected: inj}
}

// Key builds the schedule key for a request.
func Key(r *http.Request) string {
	return r.Method + " " + r.URL.RequestURI()
}

// Wrap returns a handler that serves next through the fault schedule.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := Key(r)
		class := in.Plan(key)

		in.mu.Lock()
		in.attempts[key]++
		attempt := in.attempts[key]
		in.requests++
		if class != None && (in.cfg.Repeats < 0 || attempt <= in.cfg.Repeats) {
			in.injected[class]++
		} else {
			in.passed++
			class = None
		}
		in.mu.Unlock()

		switch class {
		case None:
			next.ServeHTTP(w, r)
		case Err500:
			http.Error(w, "injected fault: internal server error", http.StatusInternalServerError)
		case RateLimit:
			w.Header().Set("Retry-After", strconv.Itoa(in.cfg.RetryAfter))
			http.Error(w, "injected fault: rate limited", http.StatusTooManyRequests)
		case Hang:
			// Stall until the client gives up; no wall clock involved, so a
			// fake-sleeper test client cancels instantly and a real crawler
			// hits its per-request timeout.
			<-r.Context().Done()
		case Reset:
			panic(http.ErrAbortHandler)
		case Truncate:
			rec := newRecorder()
			next.ServeHTTP(rec, r)
			body := rec.buf.Bytes()
			copyHeader(w.Header(), rec.hdr)
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.WriteHeader(rec.status())
			_, _ = w.Write(body[:len(body)/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		case Garble:
			rec := newRecorder()
			next.ServeHTTP(rec, r)
			copyHeader(w.Header(), rec.hdr)
			w.Header().Del("Content-Length")
			w.WriteHeader(rec.status())
			_, _ = w.Write(Mangle(rec.buf.Bytes()))
		}
	})
}

// Mangle deterministically corrupts a body into malformed HTML/JSON: the
// tail — closing tags, closing braces — is cut off and replaced with an
// unterminated marker, so HTML loses its </html> and JSON stops parsing.
func Mangle(body []byte) []byte {
	cut := len(body) * 3 / 5
	out := make([]byte, 0, cut+16)
	out = append(out, body[:cut]...)
	return append(out, []byte("\x00<garbled ")...)
}

// recorder buffers the inner handler's response so Truncate and Garble can
// rewrite it.
type recorder struct {
	hdr  http.Header
	code int
	buf  bytes.Buffer
}

func newRecorder() *recorder { return &recorder{hdr: make(http.Header)} }

func (r *recorder) Header() http.Header { return r.hdr }

func (r *recorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	r.WriteHeader(http.StatusOK)
	return r.buf.Write(p)
}

func (r *recorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
