package analysis

import (
	"psigene/internal/attackgen"
	"psigene/internal/normalize"
)

// DefaultProbeSamples is the per-profile sample count of the default
// probe corpus. The corpus-driven catalog checks (nevermatch, subsumed)
// are statements about this corpus, so the size is part of the check's
// contract: `make lint`, the golden tests and the lint:ignore
// annotations in catalog.go all assume the default.
const DefaultProbeSamples = 1000

// DefaultProbeSeed seeds the generators; attackgen is deterministic given
// the seed, which keeps lint output identical run to run.
const DefaultProbeSeed = 42

// ProbeCorpus synthesizes the catalog analyzers' test corpus: perProfile
// samples from each attackgen tool profile (the crawl corpus plus the
// SQLmap/Arachni/Vega test generators), normalized exactly as the
// pipeline normalizes training samples.
func ProbeCorpus(perProfile int, seed int64) []string {
	profiles := []attackgen.Profile{
		attackgen.CrawlProfile(),
		attackgen.SQLMapProfile(),
		attackgen.ArachniProfile(),
		attackgen.VegaProfile(),
	}
	out := make([]string, 0, perProfile*len(profiles))
	for _, p := range profiles {
		g := attackgen.NewGenerator(p, seed)
		for _, r := range g.Requests(perProfile) {
			out = append(out, normalize.Normalize(r.Payload()))
		}
	}
	return out
}
