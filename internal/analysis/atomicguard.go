package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DefaultProbeGatedPackages are the packages whose atomic.Pointer swaps
// install serving state (the gateway's detector and canary slots, the
// lifecycle's promotion path): a store of an unvalidated value there is a
// production outage one corrupt model push away, so swap sites must
// follow the validate-probe-swap idiom the hot-reload design documents.
// The fleet front's coordinated reload swaps a detector into every
// replica, so it is held to the same probe-before-commit bar.
var DefaultProbeGatedPackages = []string{
	"internal/gateway",
	"internal/lifecycle",
	"internal/admission",
	"internal/fleet",
}

// AtomicGuardAnalyzer enforces two atomicity disciplines (check
// "atomicguard"):
//
//   - Mixed access: a variable or field touched through the sync/atomic
//     function forms (atomic.AddInt64(&x, 1), atomic.LoadUint64(&f)...)
//     must never be read or written plainly anywhere else in the package —
//     the plain access races with the atomic ones, and unlike the typed
//     atomic.Int64 wrappers nothing in the type system prevents it.
//
//   - Validate-probe-swap: in probe-gated packages, storing a non-nil
//     value into an atomic.Pointer (Store, Swap, or the new-value arm of
//     CompareAndSwap) requires a probe call in the same function — the
//     idiom that keeps a corrupt model push from ever becoming the
//     serving detector.
func AtomicGuardAnalyzer(probeGated []string) *CodeAnalyzer {
	return &CodeAnalyzer{
		Name: "atomicguard",
		Doc:  "atomically-accessed state must not be accessed plainly; atomic.Pointer swaps must probe first",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			out := checkMixedAtomicAccess(prog, pkg)
			if isKernelPackage(pkg, probeGated) {
				out = append(out, checkProbeBeforeSwap(prog, pkg)...)
			}
			SortDiagnostics(out)
			return dedupeDiagnostics(out)
		},
	}
}

// atomicFuncPrefixes are the sync/atomic function-form families; any
// function whose name starts with one takes an address as first argument.
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

// checkMixedAtomicAccess flags plain uses of objects that are elsewhere
// accessed through sync/atomic function calls.
func checkMixedAtomicAccess(prog *Program, pkg *Package) []Diagnostic {
	type span struct{ lo, hi token.Pos }
	atomicObjs := make(map[types.Object]token.Pos) // object -> first atomic site
	var sanctioned []span                          // &x argument subtrees inside atomic calls

	inspectFiles(pkg, func(f *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn, _ := pkg.Info.Uses[selIdent(call.Fun)].(*types.Func)
		if !isAtomicFunc(fn) {
			return true
		}
		addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return true
		}
		id := referentIdent(addr.X)
		if id == nil {
			return true
		}
		obj := useObject(pkg, id)
		if obj == nil {
			return true
		}
		if _, seen := atomicObjs[obj]; !seen || call.Pos() < atomicObjs[obj] {
			atomicObjs[obj] = call.Pos()
		}
		sanctioned = append(sanctioned, span{addr.Pos(), addr.End()})
		return true
	})
	if len(atomicObjs) == 0 {
		return nil
	}

	inSanctioned := func(pos token.Pos) bool {
		for _, s := range sanctioned {
			if pos >= s.lo && pos <= s.hi {
				return true
			}
		}
		return false
	}

	var out []Diagnostic
	inspectFiles(pkg, func(f *ast.File, n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		first, tracked := atomicObjs[obj]
		if !tracked || inSanctioned(id.Pos()) {
			return true
		}
		out = append(out, prog.diag("atomicguard", id.Pos(),
			"%q is accessed via sync/atomic (first at line %d): this plain access races with the atomic ones",
			id.Name, prog.Fset.Position(first).Line))
		return true
	})
	return out
}

// selIdent returns the identifier a call's function expression names: the
// selector member for pkg.Fn, the identifier itself otherwise.
func selIdent(fun ast.Expr) *ast.Ident {
	switch x := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// referentIdent resolves the identifier named by an addressed expression:
// the field for &s.f, the variable for &x, the element root for &a[i].
func referentIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	case *ast.IndexExpr:
		return exprRootIdent(x.X)
	}
	return nil
}

// checkProbeBeforeSwap flags non-nil stores into atomic.Pointer values in
// functions that never probe the candidate.
func checkProbeBeforeSwap(prog *Program, pkg *Package) []Diagnostic {
	var out []Diagnostic
	inspectFiles(pkg, func(f *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		_, name, typ, ok := methodCall(pkg, call)
		if !ok || !isNamedType(typ, "sync/atomic", "Pointer") {
			return true
		}
		var stored ast.Expr
		switch name {
		case "Store", "Swap":
			if len(call.Args) == 1 {
				stored = call.Args[0]
			}
		case "CompareAndSwap":
			if len(call.Args) == 2 {
				stored = call.Args[1]
			}
		}
		if stored == nil || isNilIdent(stored) {
			return true // clearing a slot installs nothing to validate
		}
		fd := enclosingFuncDecl(pkg, call.Pos())
		if fd == nil || functionProbes(fd) {
			return true
		}
		out = append(out, prog.diag("atomicguard", call.Pos(),
			"%s stores an unprobed value into an atomic.Pointer: the validate-probe-swap idiom requires a probe call in the same function so a corrupt candidate never serves", fd.Name.Name))
		return true
	})
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// functionProbes reports whether the declaration's body calls anything
// named like a probe ("probe", "Probe", "probeDetector", ...).
func functionProbes(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name := calleeName(call); strings.Contains(strings.ToLower(name), "probe") {
				found = true
			}
		}
		return !found
	})
	return found
}
