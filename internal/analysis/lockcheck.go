package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements the two mutex-discipline analyzers:
//
//   - lockorder: every pair of mutexes must be acquired in one global
//     order. An A-then-B path in one function and a B-then-A path in
//     another is a deadlock waiting for the right interleaving; the check
//     builds the acquired-while-held graph across the package (with
//     one level of same-package call propagation, enough to see a
//     helper that locks the breaker while the caller holds reloadMu)
//     and reports every inverted pair and every re-acquisition of a
//     held mutex.
//
//   - mutexspan: a held mutex must span only fast, local work. Blocking
//     inside the critical section — detector Inspect calls, upstream
//     HTTP round trips, io.ReadAll/io.Copy, dials, sleeps, channel
//     operations — stalls every request behind the lock, which on the
//     serving path turns one slow upstream into a full outage.
//
// The analysis is intra-procedural and branch-insensitive: events are
// simulated in source order per function body, deferred Unlocks keep the
// lock held to the end of the scope, and function literals are separate
// scopes (their bodies run on their own schedule).

type lockEventKind int

const (
	lockAcquire lockEventKind = iota
	lockRelease
	lockCall   // same-package call; propagates the callee's direct locks
	lockBanned // a blocking operation (mutexspan)
)

type lockEvent struct {
	pos  token.Pos
	kind lockEventKind
	obj  types.Object // the mutex, for acquire/release
	fn   *types.Func  // the callee, for lockCall
	what string       // description of the blocking op, for lockBanned
}

func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// mutexObject resolves the receiver expression of a Lock/Unlock call to
// the object identifying the mutex: the package-level var for mu.Lock(),
// the struct field for s.mu.Lock().
func mutexObject(pkg *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return useObject(pkg, x)
	case *ast.SelectorExpr:
		return pkg.Info.Uses[x.Sel]
	case *ast.StarExpr:
		return mutexObject(pkg, x.X)
	}
	return nil
}

// bannedCall describes a call that must not happen under a lock, or ""
// when the call is fine.
func bannedCall(pkg *Package, call *ast.CallExpr) string {
	if _, name, typ, ok := methodCall(pkg, call); ok {
		switch {
		case name == "Inspect":
			return "Inspect call"
		case name == "RoundTrip":
			return "RoundTrip call"
		case name == "Do" && isNamedType(typ, "net/http", "Client"):
			return "upstream HTTP request"
		}
		return ""
	}
	fn, _ := pkg.Info.Uses[selIdent(call.Fun)].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch full := fn.FullName(); {
	case full == "io.ReadAll" || full == "io.Copy":
		return full + " call"
	case full == "time.Sleep":
		return "time.Sleep"
	case strings.HasPrefix(full, "net.Dial"):
		return full + " call"
	}
	return ""
}

// collectLockEvents walks one function body in source order and records
// acquisitions, releases, same-package calls and blocking operations.
// Deferred Unlocks are dropped on purpose — the mutex stays held to the
// end of the scope — and deferred function values are opaque.
func collectLockEvents(pkg *Package, fs funcScope) []lockEvent {
	var evs []lockEvent
	deferredCall := make(map[ast.Node]bool)
	walkShallow(fs.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			deferredCall[st.Call] = true
		case *ast.GoStmt:
			deferredCall[st.Call] = true // runs concurrently, not under this scope's locks
		case *ast.SendStmt:
			evs = append(evs, lockEvent{pos: st.Pos(), kind: lockBanned, what: "channel send"})
		case *ast.UnaryExpr:
			if st.Op == token.ARROW {
				evs = append(evs, lockEvent{pos: st.Pos(), kind: lockBanned, what: "channel receive"})
			}
		case *ast.SelectStmt:
			evs = append(evs, lockEvent{pos: st.Pos(), kind: lockBanned, what: "select"})
		case *ast.CallExpr:
			if recv, name, typ, ok := methodCall(pkg, st); ok && isMutexType(typ) {
				obj := mutexObject(pkg, recv)
				if obj == nil {
					return true
				}
				switch name {
				case "Lock", "RLock":
					if !deferredCall[st] {
						evs = append(evs, lockEvent{pos: st.Pos(), kind: lockAcquire, obj: obj})
					}
				case "Unlock", "RUnlock":
					if !deferredCall[st] {
						evs = append(evs, lockEvent{pos: st.Pos(), kind: lockRelease, obj: obj})
					}
				}
				return true
			}
			if deferredCall[st] {
				return true
			}
			if what := bannedCall(pkg, st); what != "" {
				evs = append(evs, lockEvent{pos: st.Pos(), kind: lockBanned, what: what})
				return true
			}
			if fn, ok := pkg.Info.Uses[selIdent(st.Fun)].(*types.Func); ok && fn.Pkg() == pkg.Types {
				evs = append(evs, lockEvent{pos: st.Pos(), kind: lockCall, fn: fn})
			}
		}
		return true
	})
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// directLocks maps each function declared in the package to the mutexes
// it locks directly (non-deferred Lock/RLock in its own body), the one
// level of call propagation the lockorder graph uses.
func directLocks(pkg *Package) map[*types.Func][]types.Object {
	out := make(map[*types.Func][]types.Object)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			seen := make(map[types.Object]bool)
			walkShallow(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				recv, name, typ, ok := methodCall(pkg, call)
				if !ok || !isMutexType(typ) || (name != "Lock" && name != "RLock") {
					return true
				}
				if obj := mutexObject(pkg, recv); obj != nil && !seen[obj] {
					seen[obj] = true
					out[fn] = append(out[fn], obj)
				}
				return true
			})
			sort.Slice(out[fn], func(i, j int) bool { return out[fn][i].Name() < out[fn][j].Name() })
		}
	}
	return out
}

// heldLock is one entry of the simulated held-set.
type heldLock struct {
	obj types.Object
	pos token.Pos
}

// lockEdge is one witnessed A-then-B acquisition.
type lockEdge struct {
	pos token.Pos // where B was acquired (or the call that acquires it)
	fn  string    // enclosing function
	via string    // callee name when the edge comes from call propagation
}

type edgeKey struct{ a, b types.Object }

// LockOrderAnalyzer reports inconsistent mutex acquisition orders and
// re-acquisitions of held mutexes (check "lockorder").
func LockOrderAnalyzer() *CodeAnalyzer {
	return &CodeAnalyzer{
		Name: "lockorder",
		Doc:  "mutex pairs must be acquired in one global order; a held mutex must not be re-acquired",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			callee := directLocks(pkg)
			edges := make(map[edgeKey]lockEdge)
			addEdge := func(a, b types.Object, e lockEdge) {
				k := edgeKey{a, b}
				if old, ok := edges[k]; !ok || e.pos < old.pos {
					edges[k] = e
				}
			}

			for _, fs := range funcScopes(pkg) {
				var held []heldLock
				for _, ev := range collectLockEvents(pkg, fs) {
					switch ev.kind {
					case lockAcquire:
						for _, h := range held {
							if h.obj == ev.obj {
								out = append(out, prog.diag("lockorder", ev.pos,
									"mutex %q is locked in %s while already held (locked at line %d): self-deadlock",
									ev.obj.Name(), fs.name, prog.Fset.Position(h.pos).Line))
							} else {
								addEdge(h.obj, ev.obj, lockEdge{pos: ev.pos, fn: fs.name})
							}
						}
						held = append(held, heldLock{obj: ev.obj, pos: ev.pos})
					case lockRelease:
						for i := len(held) - 1; i >= 0; i-- {
							if held[i].obj == ev.obj {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					case lockCall:
						for _, locked := range callee[ev.fn] {
							for _, h := range held {
								if h.obj == locked {
									out = append(out, prog.diag("lockorder", ev.pos,
										"%s calls %s while mutex %q is held, and %s locks %q: self-deadlock through the call",
										fs.name, ev.fn.Name(), h.obj.Name(), ev.fn.Name(), locked.Name()))
								} else {
									addEdge(h.obj, locked, lockEdge{pos: ev.pos, fn: fs.name, via: ev.fn.Name()})
								}
							}
						}
					}
				}
			}

			// Every A->B with a matching B->A is an inversion; report both
			// sides so each function's fix site is visible.
			keys := make([]edgeKey, 0, len(edges))
			for k := range edges {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i].a.Name() != keys[j].a.Name() {
					return keys[i].a.Name() < keys[j].a.Name()
				}
				return edges[keys[i]].pos < edges[keys[j]].pos
			})
			for _, k := range keys {
				rev, ok := edges[edgeKey{k.b, k.a}]
				if !ok {
					continue
				}
				e := edges[k]
				site := e.fn
				if e.via != "" {
					site += " (via " + e.via + ")"
				}
				out = append(out, prog.diag("lockorder", e.pos,
					"mutex %q is acquired while %q is held in %s, but %s acquires them in the opposite order (line %d): lock-order inversion can deadlock",
					k.b.Name(), k.a.Name(), site, rev.fn, prog.Fset.Position(rev.pos).Line))
			}
			SortDiagnostics(out)
			return dedupeDiagnostics(out)
		},
	}
}

// MutexSpanAnalyzer reports blocking operations performed while a mutex
// is held (check "mutexspan").
func MutexSpanAnalyzer() *CodeAnalyzer {
	return &CodeAnalyzer{
		Name: "mutexspan",
		Doc:  "no lock may be held across Inspect, upstream I/O, sleeps or channel operations",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			for _, fs := range funcScopes(pkg) {
				var held []heldLock
				for _, ev := range collectLockEvents(pkg, fs) {
					switch ev.kind {
					case lockAcquire:
						held = append(held, heldLock{obj: ev.obj, pos: ev.pos})
					case lockRelease:
						for i := len(held) - 1; i >= 0; i-- {
							if held[i].obj == ev.obj {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					case lockBanned:
						if len(held) > 0 {
							h := held[len(held)-1]
							out = append(out, prog.diag("mutexspan", ev.pos,
								"%s while mutex %q is held in %s (locked at line %d): blocking under the lock stalls every request behind it",
								ev.what, h.obj.Name(), fs.name, prog.Fset.Position(h.pos).Line))
						}
					}
				}
			}
			SortDiagnostics(out)
			return dedupeDiagnostics(out)
		},
	}
}
