package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// isParallelFile reports whether the file is one of the worker-pool
// kernels, named *parallel*.go by repository convention.
func isParallelFile(prog *Program, f *ast.File) bool {
	base := path.Base(prog.Fset.Position(f.Pos()).Filename)
	return strings.Contains(strings.ToLower(base), "parallel")
}

// SharedWriteAnalyzer enforces the disjoint-slot convention inside
// *parallel*.go goroutines (check "sharedwrite"): a goroutine body may
// write captured (outer-scope) state only through an index expression —
// `rows[i] = ...`, `c.data[pos] = ...` — because the worker pools
// partition output into preassigned disjoint slots. A wholesale write to
// a captured variable (`total += x`, `s = append(s, ...)`) is either a
// data race or a float-reduction reorder, both of which break the
// bit-identical parity guarantee.
func SharedWriteAnalyzer() *CodeAnalyzer {
	return &CodeAnalyzer{
		Name: "sharedwrite",
		Doc:  "goroutines in *parallel*.go must write shared state only via preassigned index slots",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			inspectFiles(pkg, func(f *ast.File, n ast.Node) bool {
				if !isParallelFile(prog, f) {
					return false
				}
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := gs.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				out = append(out, checkGoroutineWrites(prog, pkg, lit)...)
				return true
			})
			return out
		},
	}
}

// checkGoroutineWrites walks one goroutine body flagging non-indexed
// writes to variables captured from outside the goroutine's func literal.
func checkGoroutineWrites(prog *Program, pkg *Package, lit *ast.FuncLit) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, root *ast.Ident) {
		out = append(out, prog.diag("sharedwrite", pos,
			"goroutine writes captured variable %q without an index: shared writes must go through preassigned disjoint slots", root.Name))
	}
	check := func(pos token.Pos, lhs ast.Expr) {
		root, indexed := lhsRoot(lhs)
		if root == nil || indexed {
			return
		}
		obj := pkg.Info.Uses[root]
		if obj == nil {
			obj = pkg.Info.Defs[root]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return
		}
		if insideNode(v.Pos(), lit) {
			return // declared inside the goroutine: worker-local
		}
		report(pos, root)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				check(st.Pos(), lhs)
			}
		case *ast.IncDecStmt:
			check(st.Pos(), st.X)
		}
		return true
	})
	return out
}

// lhsRoot unwraps an assignment target to its root identifier and reports
// whether the path to it goes through an index expression. `s[i]` and
// `c.data[pos]` are indexed; `s`, `c.field` and `*p` are not.
func lhsRoot(e ast.Expr) (root *ast.Ident, indexed bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, indexed
		case *ast.IndexExpr:
			indexed = true
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, indexed
		}
	}
}

// LoopCaptureAnalyzer flags goroutines in *parallel*.go that reference an
// enclosing loop's iteration variable directly (check "loopcapture"). Go
// 1.22 made the capture per-iteration, but the repository convention is
// to pass loop state as parameters (`go func(slot int) {...}(w)`) so a
// reader can see at the spawn site exactly which iteration state the
// worker owns.
func LoopCaptureAnalyzer() *CodeAnalyzer {
	return &CodeAnalyzer{
		Name: "loopcapture",
		Doc:  "goroutines in *parallel*.go must take loop variables as parameters",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			for _, f := range pkg.Files {
				if !isParallelFile(prog, f) {
					continue
				}
				out = append(out, checkLoopCaptures(prog, pkg, f)...)
			}
			return out
		},
	}
}

func checkLoopCaptures(prog *Program, pkg *Package, f *ast.File) []Diagnostic {
	var out []Diagnostic
	// The Inspect callback receives nil after a node's children, so a
	// push-on-node / pop-on-nil stack tracks the loops enclosing each
	// goroutine statement.
	var loops []map[types.Object]bool
	defVar := func(vars map[types.Object]bool, e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	var depth []int // stack of node depths at which a loop frame was pushed
	level := 0
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			level--
			if len(depth) > 0 && depth[len(depth)-1] == level {
				depth = depth[:len(depth)-1]
				loops = loops[:len(loops)-1]
			}
			return true
		}
		switch st := n.(type) {
		case *ast.RangeStmt:
			vars := make(map[types.Object]bool)
			defVar(vars, st.Key)
			defVar(vars, st.Value)
			loops = append(loops, vars)
			depth = append(depth, level)
		case *ast.ForStmt:
			vars := make(map[types.Object]bool)
			if init, ok := st.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, e := range init.Lhs {
					defVar(vars, e)
				}
			}
			loops = append(loops, vars)
			depth = append(depth, level)
		case *ast.GoStmt:
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok && len(loops) > 0 {
				enclosing := make(map[types.Object]bool)
				for _, vars := range loops {
					for obj := range vars {
						enclosing[obj] = true
					}
				}
				ast.Inspect(lit, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if !ok {
						return true
					}
					if obj := pkg.Info.Uses[id]; obj != nil && enclosing[obj] {
						out = append(out, prog.diag("loopcapture", id.Pos(),
							"goroutine references loop variable %q; pass it as a parameter so the worker's slot is explicit", id.Name))
					}
					return true
				})
			}
		}
		level++
		return true
	})
	SortDiagnostics(out)
	return dedupeDiagnostics(out)
}

func dedupeDiagnostics(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	var last Diagnostic
	for i, d := range ds {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out
}
