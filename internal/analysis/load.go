package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Test files (*_test.go) are excluded: the analyzers enforce
// invariants on production code, and tests legitimately use math/rand,
// discarded errors and the rest.
type Package struct {
	// Path is the import path (module path + slash-separated directory).
	Path string
	// Name is the package name from the package clauses.
	Name string
	// Dir is the directory relative to the module root ("." for the root).
	Dir string
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info hold the go/types results for the package.
	Types *types.Package
	// Info records types, definitions and uses for every expression.
	Info *types.Info

	checking bool // import-cycle guard during type checking
}

// Program is a loaded module: every package parsed, type-checked against
// the standard library (via the source importer) and each other, with one
// shared FileSet so positions are comparable across packages.
type Program struct {
	// Root is the absolute module root directory (where go.mod lives).
	Root string
	// Module is the module path from go.mod.
	Module string
	// Fset is the shared position table; diagnostic positions and
	// suppression comments both resolve through it.
	Fset *token.FileSet
	// Pkgs are the loaded packages sorted by import path.
	Pkgs []*Package

	byPath      name2pkg
	suppression *suppressionIndex
	std         types.Importer
}

type name2pkg map[string]*Package

// Load parses and type-checks every package under root (the directory
// containing go.mod). Directories named "testdata", hidden directories and
// underscore-prefixed directories are skipped, mirroring the go tool.
func Load(root string) (*Program, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Root:   abs,
		Module: modPath,
		Fset:   token.NewFileSet(),
		byPath: make(name2pkg),
	}
	prog.std = importer.ForCompiler(prog.Fset, "source", nil)

	var dirs []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		pkg, err := prog.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Pkgs = append(prog.Pkgs, pkg)
			prog.byPath[pkg.Path] = pkg
		}
	}
	for _, pkg := range prog.Pkgs {
		if err := prog.check(pkg); err != nil {
			return nil, err
		}
	}
	prog.suppression = buildSuppressionIndex(prog.Fset, prog.Pkgs)
	return prog, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// parseDir parses the non-test Go files of one directory into a Package,
// or returns nil when the directory holds no non-test Go files.
func (prog *Program) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(prog.Root, dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: filepath.ToSlash(rel)}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Positions are recorded root-relative so diagnostics print stable
		// paths regardless of where the driver runs from.
		relFile := filepath.ToSlash(filepath.Join(pkg.Dir, name))
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if buildTagExcluded(src) {
			continue // the go tool would not build this file here either
		}
		f, err := parser.ParseFile(prog.Fset, relFile, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	pkg.Name = pkg.Files[0].Name.Name
	pkg.Path = prog.Module
	if pkg.Dir != "." {
		pkg.Path = prog.Module + "/" + pkg.Dir
	}
	return pkg, nil
}

// buildTagExcluded reports whether a //go:build line before the package
// clause evaluates false for the analyzing platform. Files the go tool
// would not compile here must not reach the type checker: they may
// declare symbols that clash with their platform-specific siblings.
func buildTagExcluded(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return false // malformed constraint: let the parser report it
			}
			return !expr.Eval(buildTagSatisfied)
		}
		if strings.HasPrefix(trimmed, "package ") {
			return false // constraints are only valid before the package clause
		}
	}
	return false
}

// buildTagSatisfied mirrors the go tool's default tag set: target OS and
// architecture, the gc compiler, the "unix" alias, and every go1.N
// language version up to the toolchain's own.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "illumos", "aix":
			return true
		}
		return false
	}
	return strings.HasPrefix(tag, "go1.")
}

// check type-checks a package, resolving module-internal imports from the
// program and everything else through the source importer.
func (prog *Program) check(pkg *Package) error {
	if pkg.Types != nil {
		return nil
	}
	if pkg.checking {
		return fmt.Errorf("analysis: import cycle through %s", pkg.Path)
	}
	pkg.checking = true
	defer func() { pkg.checking = false }()

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*progImporter)(prog)}
	tpkg, err := conf.Check(pkg.Path, prog.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// progImporter resolves imports during type checking: module-internal
// paths come from the loaded program (checked on demand), everything else
// from the standard-library source importer.
type progImporter Program

func (im *progImporter) Import(path string) (*types.Package, error) {
	prog := (*Program)(im)
	if path == prog.Module || strings.HasPrefix(path, prog.Module+"/") {
		pkg := prog.byPath[path]
		if pkg == nil {
			return nil, fmt.Errorf("analysis: unknown module package %q", path)
		}
		if err := prog.check(pkg); err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return prog.std.Import(path)
}

// Package returns the loaded package whose import path ends with the given
// module-relative suffix (e.g. "internal/feature"), or nil.
func (prog *Program) Package(suffix string) *Package {
	for _, pkg := range prog.Pkgs {
		if pkg.Path == suffix || strings.HasSuffix(pkg.Path, "/"+suffix) {
			return pkg
		}
	}
	return nil
}

// Select returns the packages matched by go-style directory patterns
// relative to the module root: "./..." matches everything, "./dir/..."
// matches a subtree, "./dir" matches one package. An empty pattern list
// matches everything.
func (prog *Program) Select(patterns []string) []*Package {
	if len(patterns) == 0 {
		return prog.Pkgs
	}
	var out []*Package
	for _, pkg := range prog.Pkgs {
		for _, pat := range patterns {
			if matchPattern(pat, pkg.Dir) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

func matchPattern(pat, dir string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	if pat == "..." || pat == "" {
		return true
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		return dir == rest || strings.HasPrefix(dir, rest+"/")
	}
	return dir == pat
}
