package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A Baseline is the committed set of accepted findings: CI fails on any
// finding not in the baseline, so the tree can adopt a new analyzer
// before every legacy finding is fixed without losing the gate on *new*
// findings. Every entry carries a mandatory reason — the invariant or
// plan that makes the debt acceptable — so the baseline documents its own
// expiry conditions instead of silently growing.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry identifies one accepted finding by check, file and exact
// message. Line numbers are deliberately not part of the key: edits above
// a finding must not invalidate the baseline, while any change to what
// the analyzer reports must.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
	Reason  string `json:"reason"`
}

func (e BaselineEntry) key() string {
	return e.Check + "\x00" + e.File + "\x00" + e.Message
}

func diagKey(d Diagnostic) string {
	return d.Check + "\x00" + d.Pos.Filename + "\x00" + d.Message
}

// PlaceholderReason marks freshly written baseline entries that a human
// has not yet justified; LoadBaseline rejects it so a regenerated
// baseline cannot be committed without reasons.
const PlaceholderReason = "TODO: justify or fix"

// ReadBaseline reads a baseline file without validating reasons — the
// regeneration path uses it to carry reasons forward from a file that may
// still hold placeholders.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// LoadBaseline reads and validates a baseline file. Every entry must have
// a non-empty, non-placeholder reason — an unjustified entry is an error,
// not a warning, because the baseline is the mechanism that keeps debt
// visible.
func LoadBaseline(path string) (*Baseline, error) {
	b, err := ReadBaseline(path)
	if err != nil {
		return nil, err
	}
	for _, e := range b.Entries {
		if e.Check == "" || e.File == "" || e.Message == "" {
			return nil, fmt.Errorf("analysis: baseline %s: entry missing check/file/message", path)
		}
		if e.Reason == "" || e.Reason == PlaceholderReason {
			return nil, fmt.Errorf("analysis: baseline %s: entry for %s in %s has no reason: every accepted finding must name why", path, e.Check, e.File)
		}
	}
	return b, nil
}

// Apply splits findings against the baseline: kept are the findings not
// covered (the ones that must fail CI), stale are baseline entries whose
// finding no longer exists (fixed debt whose entry should be deleted).
func (b *Baseline) Apply(ds []Diagnostic) (kept []Diagnostic, stale []BaselineEntry) {
	if b == nil {
		return ds, nil
	}
	covered := make(map[string]bool, len(b.Entries))
	for _, e := range b.Entries {
		covered[e.key()] = false
	}
	for _, d := range ds {
		k := diagKey(d)
		if _, ok := covered[k]; ok {
			covered[k] = true
		} else {
			kept = append(kept, d)
		}
	}
	for _, e := range b.Entries {
		if !covered[e.key()] {
			stale = append(stale, e)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].key() < stale[j].key() })
	return kept, stale
}

// WriteBaseline writes the findings as a baseline file, carrying reasons
// forward from prev for entries that already existed and stamping new
// entries with the placeholder (which LoadBaseline rejects, forcing a
// human to justify each one before the file can gate CI). Output is
// sorted and indented so diffs review cleanly.
func WriteBaseline(path string, ds []Diagnostic, prev *Baseline) error {
	reasons := make(map[string]string)
	if prev != nil {
		for _, e := range prev.Entries {
			reasons[e.key()] = e.Reason
		}
	}
	b := Baseline{Entries: []BaselineEntry{}}
	seen := make(map[string]bool)
	for _, d := range ds {
		e := BaselineEntry{Check: d.Check, File: d.Pos.Filename, Message: d.Message}
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		e.Reason = reasons[e.key()]
		if e.Reason == "" {
			e.Reason = PlaceholderReason
		}
		b.Entries = append(b.Entries, e)
	}
	sort.Slice(b.Entries, func(i, j int) bool { return b.Entries[i].key() < b.Entries[j].key() })
	data, err := json.MarshalIndent(&b, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
