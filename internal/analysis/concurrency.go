package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the shared machinery of the concurrency-discipline
// analyzers (poolescape, atomicguard, lockorder, mutexspan, leakcheck):
// type predicates for the sync primitives, method-call resolution, and a
// per-function walker that treats every function literal as its own
// analysis scope, because a closure's returns and defers do not belong to
// the surrounding function's control flow.

// DefaultConcurrencyPackages scope the analyzers whose findings are only
// meaningful where goroutines are spawned on the guaranteed paths: the
// kernel set plus the serving loop (core's pooled Inspect/Session and the
// ids evaluation worker pools). The aliasing analyzers (poolescape,
// atomicguard, lockorder, mutexspan) run everywhere — they fire only on
// sync.Pool, sync/atomic and mutex usage, which is absent elsewhere by
// construction.
func DefaultConcurrencyPackages() []string {
	return append([]string{"internal/core", "internal/ids"}, DefaultKernelPackages...)
}

// isNamedType reports whether t (through any pointers) is the named type
// pkgPath.name — generic instantiations such as atomic.Pointer[T] match
// their origin declaration.
func isNamedType(t types.Type, pkgPath, name string) bool {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			obj := x.Obj()
			return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
		default:
			return false
		}
	}
}

// methodCall resolves call as recv.Name(...) where Name is a method (not
// a package-qualified function), returning the receiver expression, the
// method name, and the receiver's type.
func methodCall(pkg *Package, call *ast.CallExpr) (recv ast.Expr, name string, typ types.Type, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", nil, false
	}
	if s, found := pkg.Info.Selections[sel]; found && s.Kind() == types.MethodVal {
		return sel.X, sel.Sel.Name, s.Recv(), true
	}
	return nil, "", nil, false
}

// calleeName returns the syntactic name of the called function — the
// identifier or selector member — for name-based idiom checks (probe
// calls), without requiring type resolution.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// funcScope is one function body analyzed in isolation: a declaration or
// a function literal. Name is the declaration's name, or the enclosing
// declaration's name for literals ("Train.func").
type funcScope struct {
	name string
	body *ast.BlockStmt
}

// funcScopes yields every function body in the package: each top-level
// declaration and each function literal as its own scope.
func funcScopes(pkg *Package) []funcScope {
	var out []funcScope
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				out = append(out, funcScope{name: fd.Name.Name, body: fd.Body})
				name := fd.Name.Name
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						out = append(out, funcScope{name: name + ".func", body: lit.Body})
					}
					return true
				})
			}
		}
	}
	return out
}

// walkShallow walks the nodes of body without descending into nested
// function literals: a closure's statements execute on its own schedule,
// so they never belong to the enclosing scope's straight-line order.
func walkShallow(body ast.Node, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != body {
			return false
		}
		return fn(n)
	})
}

// useObject resolves an identifier to the object it uses or defines.
func useObject(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// exprRootIdent unwraps an expression to its root identifier through
// indexing, slicing, selection, dereference, parens and type assertions:
// `buf[4:]`, `(*s).field` and `v.(*T)` all root at the identifier.
func exprRootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// enclosingFuncDecl finds the top-level function declaration containing
// pos, or nil. The probe-idiom check treats the whole declaration as one
// validation scope even when the store site sits inside a closure.
func enclosingFuncDecl(pkg *Package, pos token.Pos) *ast.FuncDecl {
	for _, f := range pkg.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && pos >= fd.Pos() && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}
