package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

func baselineDiag(check, file, msg string) Diagnostic {
	return Diagnostic{Check: check, Pos: token.Position{Filename: file, Line: 1}, Message: msg}
}

func TestBaselineApply(t *testing.T) {
	b := &Baseline{Entries: []BaselineEntry{
		{Check: "poolescape", File: "a.go", Message: "old debt", Reason: "migrating in PR 9"},
		{Check: "leakcheck", File: "gone.go", Message: "fixed long ago", Reason: "was real"},
	}}
	ds := []Diagnostic{
		baselineDiag("poolescape", "a.go", "old debt"),
		baselineDiag("poolescape", "a.go", "new finding"),
	}
	kept, stale := b.Apply(ds)
	if len(kept) != 1 || kept[0].Message != "new finding" {
		t.Errorf("kept = %v, want only the new finding", kept)
	}
	if len(stale) != 1 || stale[0].File != "gone.go" {
		t.Errorf("stale = %v, want only the fixed entry", stale)
	}
	// A nil baseline keeps everything.
	kept, stale = (*Baseline)(nil).Apply(ds)
	if len(kept) != 2 || len(stale) != 0 {
		t.Errorf("nil baseline: kept %d stale %d, want 2 and 0", len(kept), len(stale))
	}
}

func TestBaselineWriteLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	ds := []Diagnostic{
		baselineDiag("lockorder", "b.go", "inversion"),
		baselineDiag("atomicguard", "a.go", "plain access"),
	}
	if err := WriteBaseline(path, ds, nil); err != nil {
		t.Fatal(err)
	}

	// Fresh entries carry the placeholder, which the validating loader
	// rejects: an unjustified baseline must not gate CI.
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("LoadBaseline accepted placeholder reasons")
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 2 || b.Entries[0].Check != "atomicguard" {
		t.Fatalf("entries = %v, want 2 sorted with atomicguard first", b.Entries)
	}

	// Rewriting with a justified previous baseline carries the reason
	// forward and keeps the placeholder only for the still-new entry.
	prev := &Baseline{Entries: []BaselineEntry{
		{Check: "lockorder", File: "b.go", Message: "inversion", Reason: "ordering fix lands with the breaker rework"},
	}}
	if err := WriteBaseline(path, ds, prev); err != nil {
		t.Fatal(err)
	}
	b, err = ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range b.Entries {
		switch e.Check {
		case "lockorder":
			if e.Reason != "ordering fix lands with the breaker rework" {
				t.Errorf("reason not carried forward: %q", e.Reason)
			}
		case "atomicguard":
			if e.Reason != PlaceholderReason {
				t.Errorf("new entry reason = %q, want placeholder", e.Reason)
			}
		}
	}
}
