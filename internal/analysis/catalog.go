package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"

	"psigene/internal/core"
	"psigene/internal/feature"
)

// Catalog check names.
const (
	CheckDupFeature    = "dupfeature"    // exact-duplicate pattern or word
	CheckBadPattern    = "badpattern"    // pattern fails to compile under (?i)
	CheckCaseClass     = "caseclass"     // character class lists both letter cases under (?i)
	CheckNeverMatch    = "nevermatch"    // pattern fires on no probe-corpus sample
	CheckSubsumed      = "subsumed"      // two features are corpus-indistinguishable
	CheckDeadSig       = "deadsig"       // signature whose weights zero out every feature
	CheckOpaquePattern = "opaquepattern" // pattern defeats the serving literal prefilter
)

// Anchors maps feature names to their source positions in the catalog
// declarations, so catalog diagnostics land on the literal that defines
// the flawed feature and lint:ignore comments there can suppress them. A
// name occurring more than once keeps every occurrence in declaration
// order.
type Anchors struct {
	pos map[string][]token.Position
}

// catalogVarNames are the three Table II source lists in internal/feature.
var catalogVarNames = map[string]bool{
	"mysqlReservedWords": true,
	"signatureFragments": true,
	"referencePatterns":  true,
}

// FeatureAnchors scans the feature package's catalog declarations and
// records the position of every string literal, keyed by its unquoted
// value. Returns empty (never nil) anchors when the package or the
// declarations are absent.
func FeatureAnchors(prog *Program) *Anchors {
	a := &Anchors{pos: make(map[string][]token.Position)}
	pkg := prog.Package("internal/feature")
	if pkg == nil {
		return a
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || !catalogVarNames[vs.Names[0].Name] {
					continue
				}
				for _, v := range vs.Values {
					cl, ok := v.(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						lit, ok := elt.(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						s, err := strconv.Unquote(lit.Value)
						if err != nil {
							continue
						}
						a.pos[s] = append(a.pos[s], prog.Fset.Position(lit.Pos()))
					}
				}
			}
		}
	}
	return a
}

// at returns the position of the k-th occurrence of a feature's literal.
func (a *Anchors) at(name string, k int) token.Position {
	if a == nil {
		return token.Position{}
	}
	ps := a.pos[name]
	if k < len(ps) {
		return ps[k]
	}
	if len(ps) > 0 {
		return ps[len(ps)-1]
	}
	return token.Position{}
}

// featureLiteral returns the catalog literal a feature was declared as:
// the word for token features, the pattern for regex features.
func featureLiteral(f feature.Feature) string {
	if f.Word != "" {
		return f.Word
	}
	return f.Pattern
}

// CheckCatalog runs every catalog analyzer over the feature set: exact
// duplicates, non-compiling patterns, redundant case classes, and — using
// the probe corpus — never-matching patterns and corpus-indistinguishable
// feature pairs. parallelism feeds the corpus extraction worker pool (0 =
// GOMAXPROCS).
func CheckCatalog(set feature.Set, corpus []string, anchors *Anchors, parallelism int) []Diagnostic {
	var out []Diagnostic
	occ := make(map[string]int) // literal -> occurrences seen so far
	firstAt := make(map[string]token.Position)
	posOf := make([]token.Position, len(set.Features))
	valid := make([]bool, len(set.Features))

	for j, f := range set.Features {
		lit := featureLiteral(f)
		k := occ[lit]
		occ[lit]++
		posOf[j] = anchors.at(lit, k)
		valid[j] = true
		if k > 0 {
			valid[j] = false
			out = append(out, Diagnostic{Check: CheckDupFeature, Pos: posOf[j], Message: fmt.Sprintf(
				"feature %q duplicates an earlier catalog entry (first at %s)", f.Name, positionOrUnknown(firstAt[lit]))})
			continue
		}
		firstAt[lit] = posOf[j]
		if f.Pattern == "" {
			continue
		}
		if _, err := regexp.Compile("(?i)" + f.Pattern); err != nil {
			valid[j] = false
			out = append(out, Diagnostic{Check: CheckBadPattern, Pos: posOf[j], Message: fmt.Sprintf(
				"pattern %q does not compile under (?i): %v", f.Pattern, err)})
			continue
		}
		if cls := redundantCaseClass(f.Pattern); cls != "" {
			out = append(out, Diagnostic{Check: CheckCaseClass, Pos: posOf[j], Message: fmt.Sprintf(
				"character class %q lists both letter cases; the extractor compiles every pattern with (?i), so one case is redundant", cls)})
		}
		if _, ok := feature.RequiredLiterals(f.Pattern); !ok {
			out = append(out, Diagnostic{Check: CheckOpaquePattern, Pos: posOf[j], Message: fmt.Sprintf(
				"pattern %q has no derivable required-literal set, so the serving prefilter must run it on every sample; anchor it on a literal or suppress with a reason", f.Pattern)})
		}
	}

	out = append(out, checkCorpusFlaws(set, corpus, posOf, valid)...)
	SortDiagnostics(out)
	return out
}

// checkCorpusFlaws extracts the probe corpus once and derives the two
// corpus-driven flaw classes: never-matching patterns and pairs of
// features whose match columns are indistinguishable (identical fire
// sets — each subsumes the other on every probe sample).
func checkCorpusFlaws(set feature.Set, corpus []string, posOf []token.Position, valid []bool) []Diagnostic {
	if len(corpus) == 0 {
		return nil
	}
	var keep []int
	probe := feature.Set{}
	for j, ok := range valid {
		if ok {
			keep = append(keep, j)
			probe.Features = append(probe.Features, set.Features[j])
		}
	}
	ex, err := feature.NewExtractor(probe)
	if err != nil {
		// Duplicate names with distinct definitions (a word equal to a
		// pattern string) cannot be profiled; report and bail.
		return []Diagnostic{{Check: CheckBadPattern, Message: fmt.Sprintf(
			"catalog cannot be compiled for corpus checks: %v", err)}}
	}
	m, err := ex.SparseMatrixParallel(corpus, 0)
	if err != nil {
		return []Diagnostic{{Check: CheckBadPattern, Message: fmt.Sprintf(
			"probe-corpus extraction failed: %v", err)}}
	}

	// Column profiles in one O(nnz) pass: the fire set (rows where the
	// feature matched) and the full count column (rows plus counts).
	fireSig := make([][]byte, len(keep))
	countSig := make([][]byte, len(keep))
	fires := make([]int, len(keep))
	for i := 0; i < m.Rows(); i++ {
		cols, vals := m.RowNonZeros(i)
		for k, c := range cols {
			fireSig[c] = strconv.AppendInt(fireSig[c], int64(i), 10)
			fireSig[c] = append(fireSig[c], ',')
			countSig[c] = strconv.AppendInt(countSig[c], int64(i), 10)
			countSig[c] = append(countSig[c], ':')
			countSig[c] = strconv.AppendFloat(countSig[c], vals[k], 'g', -1, 64)
			countSig[c] = append(countSig[c], ',')
			fires[c]++
		}
	}

	var out []Diagnostic
	for c, j := range keep {
		if set.Features[j].Pattern != "" && fires[c] == 0 {
			out = append(out, Diagnostic{Check: CheckNeverMatch, Pos: posOf[j], Message: fmt.Sprintf(
				"pattern %q matches none of the %d probe-corpus samples", set.Features[j].Name, len(corpus))})
		}
	}

	// Subsumption is a statement about regexes (word features are the
	// paper's fixed reserved-word census, pruned at train time), so only
	// pattern columns join the fire-set groups.
	groups := make(map[string]int) // fire-set signature -> first column
	for c, j := range keep {
		if fires[c] == 0 || set.Features[j].Pattern == "" {
			continue
		}
		key := string(fireSig[c])
		first, ok := groups[key]
		if !ok {
			groups[key] = c
			continue
		}
		counts := "match counts differ, so the count features still separate"
		if string(countSig[c]) == string(countSig[first]) {
			counts = "with identical match counts — the columns are fully redundant"
		}
		out = append(out, Diagnostic{Check: CheckSubsumed, Pos: posOf[j], Message: fmt.Sprintf(
			"feature %q is corpus-indistinguishable from %q: each subsumes the other on all %d probe samples they match (%s)",
			set.Features[j].Name, set.Features[keep[first]].Name, fires[c], counts)})
	}
	return out
}

// redundantCaseClass scans a pattern's character classes and returns the
// first class that contains both an a-z and an A-Z range, or both cases
// of the same literal letter — redundant given the extractor's (?i)
// compilation. Escapes are skipped; returns "" when clean.
func redundantCaseClass(pattern string) string {
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '\\':
			i++ // skip the escaped byte
		case '[':
			end := classEnd(pattern, i)
			if end < 0 {
				return "" // malformed; the compile check reports it
			}
			if classHasBothCases(pattern[i : end+1]) {
				return pattern[i : end+1]
			}
			i = end
		}
	}
	return ""
}

// classEnd returns the index of the ']' closing the class opened at
// pattern[start] == '[', or -1.
func classEnd(pattern string, start int) int {
	i := start + 1
	if i < len(pattern) && pattern[i] == '^' {
		i++
	}
	if i < len(pattern) && pattern[i] == ']' {
		i++ // a leading ']' is a literal member
	}
	for ; i < len(pattern); i++ {
		switch pattern[i] {
		case '\\':
			i++
		case ']':
			return i
		}
	}
	return -1
}

// classHasBothCases reports whether a [...] class covers some letter in
// both cases, via literal members or ranges.
func classHasBothCases(class string) bool {
	var lower, upper [26]bool
	body := class[1 : len(class)-1]
	if len(body) > 0 && body[0] == '^' {
		body = body[1:]
	}
	add := func(lo, hi byte) {
		for c := lo; c >= 'a' && c <= 'z' && c <= hi; c++ {
			lower[c-'a'] = true
		}
		for c := lo; c >= 'A' && c <= 'Z' && c <= hi; c++ {
			upper[c-'A'] = true
		}
	}
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c == '\\' {
			i++
			continue
		}
		if i+2 < len(body) && body[i+1] == '-' && body[i+2] != ']' && body[i+2] != '\\' {
			add(c, body[i+2])
			i += 2
			continue
		}
		add(c, c)
	}
	for i := range lower {
		if lower[i] && upper[i] {
			return true
		}
	}
	return false
}

// CheckSignatures reports dead signatures in a trained model: a logistic
// model whose every weight is zero cannot discriminate — its probability
// is constant in the input, so the signature either never fires or fires
// on everything. origin labels the diagnostics (e.g. the model file path).
func CheckSignatures(m *core.Model, origin string) []Diagnostic {
	var out []Diagnostic
	pos := token.Position{Filename: origin}
	for _, s := range m.Signatures {
		switch {
		case s.Model == nil || len(s.Features) == 0:
			out = append(out, Diagnostic{Check: CheckDeadSig, Pos: pos, Message: fmt.Sprintf(
				"signature %d has no features left after pruning: it can never discriminate", s.ID)})
		case allZero(s.Model.Weights):
			verdict := "never fires"
			if constantProbability(s) >= s.Threshold {
				verdict = "fires on every request"
			}
			out = append(out, Diagnostic{Check: CheckDeadSig, Pos: pos, Message: fmt.Sprintf(
				"signature %d is dead: all %d LR weights are zero, so p is constant and the signature %s", s.ID, len(s.Model.Weights), verdict)})
		}
	}
	return out
}

func allZero(ws []float64) bool {
	for _, w := range ws {
		if w != 0 {
			return false
		}
	}
	return len(ws) > 0
}

// constantProbability evaluates a zero-weight signature's (constant)
// probability.
func constantProbability(s *core.Signature) float64 {
	return s.Model.Predict(make([]float64, len(s.Model.Weights)))
}

func positionOrUnknown(p token.Position) string {
	if !p.IsValid() {
		return "earlier entry"
	}
	return p.String()
}
