package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const suppressionSrc = `package p

//lint:file-ignore nevermatch the whole file opts out with a reason

func f() {
	_ = 1 //lint:ignore errcheck same-line directive with a reason
	//lint:ignore errwrap directive above the flagged line
	_ = 2
	//lint:ignore maporder
	_ = 3
}
`

func progWithFile(t *testing.T, src string) *Program {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p/p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "p", Name: "p", Files: []*ast.File{f}}
	return &Program{Fset: fset, Pkgs: []*Package{pkg}, suppression: buildSuppressionIndex(fset, []*Package{pkg})}
}

func TestSuppression(t *testing.T) {
	prog := progWithFile(t, suppressionSrc)
	at := func(check string, line int) Diagnostic {
		return Diagnostic{Check: check, Pos: token.Position{Filename: "p/p.go", Line: line}}
	}
	cases := []struct {
		d    Diagnostic
		want bool
	}{
		{at("errcheck", 6), true},   // same-line directive
		{at("errwrap", 8), true},    // directive on the line above
		{at("errwrap", 9), false},   // one line too far
		{at("errcheck", 8), false},  // different check than the directive names
		{at("maporder", 10), false}, // bare directive without a reason suppresses nothing
		{at("nevermatch", 6), true}, // file-wide directive
		{at("nevermatch", 99), true},
		{Diagnostic{Check: "nevermatch", Pos: token.Position{Filename: "q/q.go", Line: 6}}, false},
	}
	for _, c := range cases {
		if got := prog.Suppressed(c.d); got != c.want {
			t.Errorf("Suppressed(%s at %s:%d) = %v, want %v", c.d.Check, c.d.Pos.Filename, c.d.Pos.Line, got, c.want)
		}
	}
}

func TestLhsRoot(t *testing.T) {
	cases := []struct {
		expr    string
		root    string
		indexed bool
	}{
		{`s`, "s", false},
		{`s[i]`, "s", true},
		{`c.data[pos]`, "c", true},
		{`c.field`, "c", false},
		{`(*p)`, "p", false},
		{`m[k].f`, "m", true},
		{`f()`, "", false},
	}
	for _, c := range cases {
		e, err := parser.ParseExpr(c.expr)
		if err != nil {
			t.Fatal(err)
		}
		root, indexed := lhsRoot(e)
		name := ""
		if root != nil {
			name = root.Name
		}
		if name != c.root || indexed != c.indexed {
			t.Errorf("lhsRoot(%s) = (%q, %v), want (%q, %v)", c.expr, name, indexed, c.root, c.indexed)
		}
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pat, dir string
		want     bool
	}{
		{"./...", "internal/feature", true},
		{"./...", ".", true},
		{"./internal/...", "internal/feature", true},
		{"./internal/...", "internal", true},
		{"./internal/...", "cmd/psigene", false},
		{"./internal/feature", "internal/feature", true},
		{"./internal/feature", "internal/featurex", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.pat, c.dir); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pat, c.dir, got, c.want)
		}
	}
}

func TestSortAndFilterDiagnostics(t *testing.T) {
	ds := []Diagnostic{
		{Check: "b", Pos: token.Position{Filename: "z.go", Line: 1}},
		{Check: "a", Pos: token.Position{Filename: "a.go", Line: 9}},
		{Check: "a", Pos: token.Position{Filename: "a.go", Line: 2}},
	}
	SortDiagnostics(ds)
	if ds[0].Pos.Line != 2 || ds[1].Pos.Line != 9 || ds[2].Pos.Filename != "z.go" {
		t.Errorf("sort order wrong: %v", ds)
	}
	if got := Filter(ds, nil); len(got) != 3 {
		t.Errorf("empty filter dropped findings: %v", got)
	}
	// Filter reuses the backing array, so this is the last use of ds.
	kept := Filter(ds, map[string]bool{"b": true})
	if len(kept) != 1 || kept[0].Check != "b" {
		t.Errorf("filter kept %v", kept)
	}
}
