package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeakCheckAnalyzer proves every goroutine spawned in the concurrency
// packages has a termination signal (check "leakcheck"). A goroutine with
// no WaitGroup.Done, no channel operation and no select can never be
// joined or told to stop: under the retrain lifecycle that is a leak per
// reload, and leaked workers holding pooled buffers break the
// allocation-free serving loop's accounting. Two rules per spawn site:
//
//   - the goroutine body must contain at least one signal — a
//     WaitGroup.Done call, a channel send or receive, a select, or a
//     range over a channel;
//   - every unconditional `for {}` loop in the body must contain a
//     return or break on some path, or the goroutine provably never
//     exits even when signalled.
//
// Bodies are resolved for `go func(){...}()` literals and for calls to
// functions and methods declared in the same package; a spawn whose body
// cannot be seen (external function, function value) is reported too —
// the analyzer cannot prove it terminates, and the fix is a one-line
// wrapper or an ignore directive naming the external contract.
func LeakCheckAnalyzer(scope []string) *CodeAnalyzer {
	return &CodeAnalyzer{
		Name: "leakcheck",
		Doc:  "every spawned goroutine needs a provable termination signal",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			if !isKernelPackage(pkg, scope) {
				return nil
			}
			var out []Diagnostic
			inspectFiles(pkg, func(f *ast.File, n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body := goroutineBody(pkg, gs)
				if body == nil {
					out = append(out, prog.diag("leakcheck", gs.Pos(),
						"goroutine body is not visible to analysis (external function or function value): termination cannot be proven"))
					return true
				}
				if !hasTerminationSignal(pkg, body) {
					out = append(out, prog.diag("leakcheck", gs.Pos(),
						"goroutine has no termination signal: no WaitGroup.Done, channel operation or select in its body"))
				}
				out = append(out, checkInfiniteLoops(prog, body)...)
				return true
			})
			SortDiagnostics(out)
			return dedupeDiagnostics(out)
		},
	}
}

// goroutineBody resolves the body a go statement runs: the literal's body
// for `go func(){...}()`, the declaration's body for calls to same-package
// functions and methods, nil otherwise.
func goroutineBody(pkg *Package, gs *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	fn, _ := pkg.Info.Uses[selIdent(gs.Call.Fun)].(*types.Func)
	if fn == nil || fn.Pkg() != pkg.Types {
		return nil
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && pkg.Info.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// hasTerminationSignal scans the whole goroutine body (including nested
// literals — a signal forwarded through a helper closure still counts)
// for any construct that can join or stop the goroutine.
func hasTerminationSignal(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if st.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[st.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if _, name, typ, ok := methodCall(pkg, st); ok && name == "Done" && isNamedType(typ, "sync", "WaitGroup") {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkInfiniteLoops flags `for {}` loops in the goroutine body with no
// reachable return or break. Nested function literals are excluded on
// both sides: their loops run on their own schedule, and a return inside
// one does not exit this loop.
func checkInfiniteLoops(prog *Program, body *ast.BlockStmt) []Diagnostic {
	var out []Diagnostic
	walkShallow(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		exits := false
		walkShallow(loop.Body, func(m ast.Node) bool {
			switch br := m.(type) {
			case *ast.ReturnStmt:
				exits = true
			case *ast.BranchStmt:
				if br.Tok == token.BREAK || br.Tok == token.GOTO {
					exits = true
				}
			}
			return !exits
		})
		if !exits {
			out = append(out, prog.diag("leakcheck", loop.Pos(),
				"infinite loop in goroutine has no return or break: the goroutine can never exit"))
		}
		return true
	})
	return out
}
