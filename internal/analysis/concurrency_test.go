package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadModule writes a throwaway module to disk and loads it through the
// real loader, so the analyzers under test see fully type-checked
// packages exactly as the driver does.
func loadModule(t *testing.T, files map[string]string) *Program {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmod\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	prog, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// wantFindings asserts the diagnostics match the expected (check,
// message-substring) pairs in order.
func wantFindings(t *testing.T, ds []Diagnostic, wants ...[2]string) {
	t.Helper()
	if len(ds) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%v", len(ds), len(wants), ds)
	}
	for i, w := range wants {
		if ds[i].Check != w[0] || !strings.Contains(ds[i].Message, w[1]) {
			t.Errorf("finding %d = %s, want check %q with message containing %q", i, ds[i], w[0], w[1])
		}
	}
}

func TestPoolEscapeRules(t *testing.T) {
	prog := loadModule(t, map[string]string{"p/p.go": `package p

import "sync"

var pool = sync.Pool{New: func() any { return new([64]byte) }}

func useAfter() int {
	b := pool.Get().(*[64]byte)
	pool.Put(b)
	return len(b)
}

func earlyReturn(bad bool) {
	b := pool.Get().(*[64]byte)
	if bad {
		return
	}
	b[0] = 1
	pool.Put(b)
}

func returnsDeferred() *[64]byte {
	b := pool.Get().(*[64]byte)
	defer pool.Put(b)
	return b
}

func checkout() *[64]byte {
	return pool.Get().(*[64]byte) // ownership transfer: no Put here, exempt
}

func clean() {
	b := pool.Get().(*[64]byte)
	defer pool.Put(b)
	b[0] = 1
}
`})
	ds := prog.RunCode(prog.Pkgs, []*CodeAnalyzer{PoolEscapeAnalyzer()})
	wantFindings(t, ds,
		[2]string{"poolescape", "used after Put in useAfter"},
		[2]string{"poolescape", "return leaks pooled value"},
		[2]string{"poolescape", "deferred Put releases on return"},
	)
}

func TestPoolEscapeAliasTracking(t *testing.T) {
	prog := loadModule(t, map[string]string{"p/p.go": `package p

import "sync"

var pool = sync.Pool{New: func() any { return make([]byte, 64) }}

func aliased() byte {
	b := pool.Get().([]byte)
	head := b[:8]
	pool.Put(b)
	return head[0]
}

func rebound() int {
	b := pool.Get().([]byte)
	pool.Put(b)
	b = make([]byte, 4)
	return len(b) // fresh value under the old name: not a pooled read
}
`})
	ds := prog.RunCode(prog.Pkgs, []*CodeAnalyzer{PoolEscapeAnalyzer()})
	wantFindings(t, ds,
		[2]string{"poolescape", "alias of pooled value"},
	)
}

func TestLockOrderInversionAndPropagation(t *testing.T) {
	prog := loadModule(t, map[string]string{"p/p.go": `package p

import "sync"

var a, b sync.Mutex

func lockB() {
	b.Lock()
	b.Unlock()
}

func forward() {
	a.Lock()
	lockB()
	a.Unlock()
}

func inverse() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}

func again() {
	a.Lock()
	a.Lock()
	a.Unlock()
	a.Unlock()
}
`})
	ds := prog.RunCode(prog.Pkgs, []*CodeAnalyzer{LockOrderAnalyzer()})
	wantFindings(t, ds,
		[2]string{"lockorder", "opposite order"}, // forward's call site, via lockB
		[2]string{"lockorder", "opposite order"}, // inverse's direct acquisition
		[2]string{"lockorder", "self-deadlock"},  // again
	)
}

func TestMutexSpanBlockingOps(t *testing.T) {
	prog := loadModule(t, map[string]string{"p/p.go": `package p

import (
	"sync"
	"time"
)

func waits(c chan int) int {
	var mu sync.Mutex
	mu.Lock()
	v := <-c
	mu.Unlock()
	return v
}

func sleeps(mu *sync.Mutex) {
	mu.Lock()
	time.Sleep(time.Millisecond)
	mu.Unlock()
}

func clean(mu *sync.Mutex, c chan int) {
	mu.Lock()
	mu.Unlock()
	<-c // after release: fine
}
`})
	ds := prog.RunCode(prog.Pkgs, []*CodeAnalyzer{MutexSpanAnalyzer()})
	wantFindings(t, ds,
		[2]string{"mutexspan", "channel receive"},
		[2]string{"mutexspan", "time.Sleep"},
	)
}

func TestLeakCheckResolvesNamedWorkers(t *testing.T) {
	prog := loadModule(t, map[string]string{"internal/cluster/c.go": `package cluster

func worker(c chan int, out *int) {
	for v := range c {
		*out += v
	}
}

func Start(c chan int, out *int) {
	go worker(c, out) // named same-package worker with a range signal: clean
}

func Leak() {
	go func() {}()
}
`})
	ds := prog.RunCode(prog.Pkgs, []*CodeAnalyzer{LeakCheckAnalyzer(DefaultConcurrencyPackages())})
	wantFindings(t, ds,
		[2]string{"leakcheck", "no termination signal"},
	)
}

func TestLeakCheckScope(t *testing.T) {
	// The same leak outside the concurrency scope is not reported.
	prog := loadModule(t, map[string]string{"other/o.go": `package other

func Leak() {
	go func() {}()
}
`})
	ds := prog.RunCode(prog.Pkgs, []*CodeAnalyzer{LeakCheckAnalyzer(DefaultConcurrencyPackages())})
	if len(ds) != 0 {
		t.Errorf("leakcheck fired outside its scope: %v", ds)
	}
}

func TestAtomicGuardMixedAccess(t *testing.T) {
	prog := loadModule(t, map[string]string{"p/p.go": `package p

import "sync/atomic"

var gen uint64

func bump() {
	atomic.AddUint64(&gen, 1)
}

func read() uint64 {
	return gen
}
`})
	ds := prog.RunCode(prog.Pkgs, []*CodeAnalyzer{AtomicGuardAnalyzer(nil)})
	wantFindings(t, ds,
		[2]string{"atomicguard", "plain access races"},
	)
}

func TestFileIgnoreDoesNotLeakAcrossFiles(t *testing.T) {
	prog := loadModule(t, map[string]string{
		"p/a.go": `package p

//lint:file-ignore errcheck this file opts out with a reason

import "os"

func A() {
	os.Remove("a")
}
`,
		"p/b.go": `package p

import "os"

func B() {
	os.Remove("b")
}
`,
	})
	ds := prog.RunCode(prog.Pkgs, []*CodeAnalyzer{ErrCheckAnalyzer()})
	wantFindings(t, ds,
		[2]string{"errcheck", "os.Remove"},
	)
	if !strings.HasSuffix(ds[0].Pos.Filename, "b.go") {
		t.Errorf("surviving finding should be in b.go, got %s", ds[0].Pos.Filename)
	}
}

func TestLoaderSkipsFalseBuildTags(t *testing.T) {
	prog := loadModule(t, map[string]string{
		"tagged/a.go": `package tagged

func Mode() string { return modeName() }
`,
		"tagged/skip.go": `//go:build neverbuild

package tagged

func modeName() string { return "excluded" }
`,
		"tagged/keep.go": `//go:build gc

package tagged

func modeName() string { return "gc" }
`,
	})
	pkg := prog.Package("tagged")
	if pkg == nil {
		t.Fatal("tagged package not loaded")
	}
	// Loading succeeded at all means skip.go was excluded: its modeName
	// would otherwise clash with keep.go's during type checking.
	if len(pkg.Files) != 2 {
		t.Errorf("loaded %d files, want 2 (a.go and keep.go)", len(pkg.Files))
	}
}

func TestBuildTagExcluded(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"package p\n", false},
		{"//go:build neverbuild\n\npackage p\n", true},
		{"//go:build gc\n\npackage p\n", false},
		{"//go:build !neverbuild\n\npackage p\n", false},
		{"//go:build go1.18\n\npackage p\n", false},
		// A constraint-looking comment after the package clause is not a
		// constraint.
		{"package p\n\n//go:build neverbuild\n", false},
	}
	for _, c := range cases {
		if got := buildTagExcluded([]byte(c.src)); got != c.want {
			t.Errorf("buildTagExcluded(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}
