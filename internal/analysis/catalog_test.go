package analysis

import (
	"strings"
	"testing"

	"psigene/internal/core"
	"psigene/internal/feature"
	"psigene/internal/ml"
)

func pat(name, p string) feature.Feature {
	return feature.Feature{Name: name, Source: feature.SourceReference, Pattern: p}
}

func word(w string) feature.Feature {
	return feature.Feature{Name: w, Source: feature.SourceReservedWord, Word: w}
}

func checksOf(ds []Diagnostic) map[string]int {
	out := make(map[string]int)
	for _, d := range ds {
		out[d.Check]++
	}
	return out
}

func TestCheckCatalogStaticFlaws(t *testing.T) {
	set := feature.Set{Features: []feature.Feature{
		pat("a", `union`),
		pat("a2", `union`),        // dupfeature: same literal as "a"
		pat("bad", `se(lect`),     // badpattern: unbalanced paren
		pat("cls", `[a-zA-Z_]+=`), // caseclass: both cases under (?i)
		word("select"),
	}}
	ds := CheckCatalog(set, nil, nil, 0)
	got := checksOf(ds)
	want := map[string]int{CheckDupFeature: 1, CheckBadPattern: 1, CheckCaseClass: 1}
	for c, n := range want {
		if got[c] != n {
			t.Errorf("check %s: %d findings, want %d\n%v", c, got[c], n, ds)
		}
	}
	if got[CheckNeverMatch] != 0 || got[CheckSubsumed] != 0 {
		t.Errorf("corpus checks ran without a corpus: %v", ds)
	}
}

func TestCheckCatalogCorpusFlaws(t *testing.T) {
	set := feature.Set{Features: []feature.Feature{
		pat("droptable", `drop\s+table`),
		pat("semidrop", `;\s*drop`), // fires exactly with "droptable" on this corpus
		pat("ghost", `xp_cmdshell`), // nevermatch: absent from the corpus
		pat("quote", `'`),           // distinct fire set: also matches the benign row
		word("drop"),                // same fire set as the drop patterns, but words are exempt
	}}
	corpus := []string{
		"1'; drop table users",
		"2'; drop table logs",
		"plain='value'",
	}
	ds := CheckCatalog(set, corpus, nil, 0)
	got := checksOf(ds)
	if got[CheckNeverMatch] != 1 {
		t.Errorf("nevermatch: %d findings, want 1 (ghost)\n%v", got[CheckNeverMatch], ds)
	}
	if got[CheckSubsumed] != 1 {
		t.Errorf("subsumed: %d findings, want 1 (semidrop vs droptable; the word is exempt)\n%v", got[CheckSubsumed], ds)
	}
	for _, d := range ds {
		if d.Check == CheckSubsumed {
			if !strings.Contains(d.Message, `"semidrop"`) || !strings.Contains(d.Message, `"droptable"`) {
				t.Errorf("subsumed pair misidentified: %s", d.Message)
			}
			if !strings.Contains(d.Message, "fully redundant") {
				t.Errorf("identical count columns should be called fully redundant: %s", d.Message)
			}
		}
	}
}

func TestCheckCatalogSubsumedCountsDiffer(t *testing.T) {
	set := feature.Set{Features: []feature.Feature{
		pat("open", `/\*`),
		pat("pair", `/\*.*?\*/`),
	}}
	// Both patterns fire on both rows, but the dangling opener in the
	// first sample gives open=2 vs pair=1, so the count columns differ.
	corpus := []string{"/* x */ /*", "/* y */"}
	ds := CheckCatalog(set, corpus, nil, 0)
	got := checksOf(ds)
	if got[CheckSubsumed] != 1 {
		t.Fatalf("subsumed: %d findings, want 1\n%v", got[CheckSubsumed], ds)
	}
	for _, d := range ds {
		if d.Check == CheckSubsumed && !strings.Contains(d.Message, "counts differ") {
			t.Errorf("differing count columns should be reported as such: %s", d.Message)
		}
	}
}

func TestCheckCatalogOpaquePatterns(t *testing.T) {
	set := feature.Set{Features: []feature.Feature{
		pat("any", `.+`),        // no literal anywhere in the tree
		pat("wide", `[^\x00]+`), // class far over the per-class literal cap
		pat("star", `(union)*`), // may match empty, so no literal is required
		pat("gated", `union\s+select`),
		pat("class", `[<>]`), // small class: per-member literals derive
		word("select"),       // reserved words bypass the regex engine entirely
	}}
	ds := CheckCatalog(set, nil, nil, 0)
	var opaque []Diagnostic
	for _, d := range ds {
		if d.Check == CheckOpaquePattern {
			opaque = append(opaque, d)
		}
	}
	if len(opaque) != 3 {
		t.Fatalf("opaquepattern: %d findings, want 3 (any, wide, star)\n%v", len(opaque), ds)
	}
	for _, d := range opaque {
		if !strings.Contains(d.Message, "required-literal") {
			t.Errorf("message should explain the missing literal set: %s", d.Message)
		}
	}
}

// TestCatalogFullyGated pins the property the serving fast path relies
// on: every regex feature in the shipped catalog derives at least one
// required literal, so the prefilter's always-run set is empty. A new
// catalog pattern that breaks this shows up here (and in psigenelint)
// rather than as a silent per-request slowdown.
func TestCatalogFullyGated(t *testing.T) {
	ds := CheckCatalog(feature.Catalog(), nil, nil, 0)
	for _, d := range ds {
		if d.Check == CheckOpaquePattern {
			t.Errorf("shipped catalog pattern is prefilter-opaque: %s", d.Message)
		}
	}
}

func TestRedundantCaseClass(t *testing.T) {
	cases := []struct {
		pattern, want string
	}{
		{`[a-zA-Z]`, `[a-zA-Z]`},
		{`[^a-zA-Z&]+=`, `[^a-zA-Z&]`},
		{`[aA]`, `[aA]`},
		{`[a-z]`, ""},
		{`[A-Z0-9]`, ""},
		{`[a-f][G-Z]`, ""}, // disjoint letters across two classes
		{`\[a-zA-Z\]`, ""}, // escaped brackets are literals, not a class
		{`[]a-zA-Z]`, `[]a-zA-Z]`},
		{`[a-`, ""}, // malformed: left to the compile check
		{`plain`, ""},
	}
	for _, c := range cases {
		if got := redundantCaseClass(c.pattern); got != c.want {
			t.Errorf("redundantCaseClass(%q) = %q, want %q", c.pattern, got, c.want)
		}
	}
}

func TestCheckSignatures(t *testing.T) {
	m := &core.Model{Signatures: []*core.Signature{
		{ID: 1, Features: []int{0, 1}, Threshold: 0.5,
			Model: &ml.LogisticModel{Bias: 0.1, Weights: []float64{1, -2}}},
		{ID: 2, Features: []int{0}, Threshold: 0.5,
			Model: &ml.LogisticModel{Bias: -3, Weights: []float64{0}}}, // dead, never fires
		{ID: 3, Features: []int{0}, Threshold: 0.5,
			Model: &ml.LogisticModel{Bias: 3, Weights: []float64{0}}}, // dead, always fires
		{ID: 4, Features: nil, Model: nil}, // dead, nothing left after pruning
	}}
	ds := CheckSignatures(m, "model.json")
	if len(ds) != 3 {
		t.Fatalf("%d findings, want 3 dead signatures\n%v", len(ds), ds)
	}
	for _, d := range ds {
		if d.Check != CheckDeadSig {
			t.Errorf("unexpected check %s", d.Check)
		}
		if d.Pos.Filename != "model.json" {
			t.Errorf("diagnostic not anchored to origin: %v", d.Pos)
		}
	}
	if !strings.Contains(ds[0].Message, "signature 2") || !strings.Contains(ds[0].Message, "never fires") {
		t.Errorf("signature 2 verdict: %s", ds[0].Message)
	}
	if !strings.Contains(ds[1].Message, "signature 3") || !strings.Contains(ds[1].Message, "fires on every request") {
		t.Errorf("signature 3 verdict: %s", ds[1].Message)
	}
	if !strings.Contains(ds[2].Message, "signature 4") || !strings.Contains(ds[2].Message, "no features") {
		t.Errorf("signature 4 verdict: %s", ds[2].Message)
	}
}

func TestProbeCorpusDeterministic(t *testing.T) {
	a := ProbeCorpus(5, DefaultProbeSeed)
	b := ProbeCorpus(5, DefaultProbeSeed)
	if len(a) != 20 {
		t.Fatalf("corpus has %d samples, want 5 per profile x 4 profiles", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs between identically seeded runs", i)
		}
	}
}
