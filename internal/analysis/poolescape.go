package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PoolEscapeAnalyzer enforces the sync.Pool recycling discipline the
// allocation-free serving loop depends on (check "poolescape"), by
// intra-procedural dataflow over Get/Put pairs inside each function body:
//
//   - a pooled value (or any alias of it — a sub-slice, a field path, a
//     rebound name) must not be read, returned, stored or sent after the
//     value went back with Put: the pool may hand the buffer to another
//     goroutine at any moment, so a use after Put is a latent data race
//     that the race detector only catches when the reuse actually
//     interleaves;
//   - a function that checks out a value and puts it back non-deferred
//     must not return before the Put (the classic early-error leak: every
//     such return quietly drains the pool under error load);
//   - a function holding a deferred Put must not return the pooled value
//     or an alias of it — the caller would receive a buffer that is
//     already back in the pool.
//
// Functions that Get without ever Putting transfer ownership on purpose
// (the session/checkout pattern: feature.AcquireScratch, core.NewSession)
// and are exempt by construction — every rule above requires a Put in the
// same function to fire.
func PoolEscapeAnalyzer() *CodeAnalyzer {
	return &CodeAnalyzer{
		Name: "poolescape",
		Doc:  "pooled values must not be used, returned or retained after Put, and must not leak on early returns",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			for _, fs := range funcScopes(pkg) {
				out = append(out, checkPoolScope(prog, pkg, fs)...)
			}
			SortDiagnostics(out)
			return dedupeDiagnostics(out)
		},
	}
}

// isPoolGet reports whether e is a sync.Pool Get call, looking through
// parens and type assertions (`p.Get().(*T)` is the idiomatic form).
func isPoolGet(pkg *Package, e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			_, name, typ, ok := methodCall(pkg, x)
			return ok && name == "Get" && isNamedType(typ, "sync", "Pool")
		default:
			return false
		}
	}
}

// poolPut matches p.Put(v) with a plain-identifier argument and returns
// the argument's object. Puts of compound expressions (s.field) are not
// tracked — the analysis keys on local names.
func poolPut(pkg *Package, call *ast.CallExpr) types.Object {
	_, name, typ, ok := methodCall(pkg, call)
	if !ok || name != "Put" || !isNamedType(typ, "sync", "Pool") || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return useObject(pkg, id)
}

// poolFacts is everything checkPoolScope learns about one pooled root.
type poolFacts struct {
	getPos token.Pos
	// puts are non-deferred Put positions (end of the call); deferred
	// records whether a `defer p.Put(v)` exists.
	puts     []token.Pos
	deferred bool
	// rebinds are positions where the root name is reassigned wholesale,
	// which ends the pooled value's association with the name.
	rebinds []token.Pos
}

// checkPoolScope runs the three poolescape rules over one function body.
func checkPoolScope(prog *Program, pkg *Package, fs funcScope) []Diagnostic {
	// Pass 1: pooled roots — locals assigned from a Pool.Get.
	pooled := make(map[types.Object]*poolFacts)
	walkShallow(fs.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) == 0 || len(as.Rhs) == 0 {
			return true
		}
		if !isPoolGet(pkg, as.Rhs[0]) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := useObject(pkg, id); obj != nil {
				if _, seen := pooled[obj]; !seen {
					pooled[obj] = &poolFacts{getPos: as.Pos()}
				}
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return nil
	}

	// Pass 2: aliases — locals assigned from an expression rooted at a
	// pooled name (sub-slices, field reads, rebindings under a new name).
	// Iterated to a fixpoint so chains of aliases resolve.
	alias := make(map[types.Object]types.Object) // alias -> pooled root
	rootOf := func(obj types.Object) types.Object {
		if obj == nil {
			return nil
		}
		if _, ok := pooled[obj]; ok {
			return obj
		}
		return alias[obj]
	}
	for changed := true; changed; {
		changed = false
		walkShallow(fs.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				rootID := exprRootIdent(rhs)
				if rootID == nil {
					continue
				}
				root := rootOf(useObject(pkg, rootID))
				if root == nil {
					continue
				}
				lhs, ok := as.Lhs[i].(*ast.Ident)
				if !ok || lhs.Name == "_" {
					continue
				}
				obj := useObject(pkg, lhs)
				if obj == nil || obj == root {
					continue
				}
				if _, isPooled := pooled[obj]; isPooled {
					continue
				}
				if alias[obj] != root {
					alias[obj] = root
					changed = true
				}
			}
			return true
		})
	}

	// Pass 3: events — puts, rebinds, reads, returns, all in source order.
	type read struct {
		pos  token.Pos
		obj  types.Object // the identifier actually read (root or alias)
		root types.Object
	}
	var reads []read
	var returns []*ast.ReturnStmt
	skip := make(map[ast.Node]bool) // identifier nodes that are not value reads
	walkShallow(fs.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if obj := poolPut(pkg, st.Call); obj != nil {
				if f, ok := pooled[rootObj(pooled, alias, obj)]; ok {
					f.deferred = true
				}
				skip[st.Call] = true // the Put argument is the release, not a read
			}
		case *ast.CallExpr:
			if skip[st] {
				return false
			}
			if obj := poolPut(pkg, st); obj != nil {
				if f, ok := pooled[rootObj(pooled, alias, obj)]; ok {
					f.puts = append(f.puts, st.End())
				}
				if id, ok := ast.Unparen(st.Args[0]).(*ast.Ident); ok {
					skip[id] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					skip[id] = true // wholesale rebind, not a read
					if obj := useObject(pkg, id); obj != nil {
						if f, ok := pooled[obj]; ok && st.Pos() > f.getPos {
							f.rebinds = append(f.rebinds, st.Pos())
						}
					}
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, st)
		case *ast.Ident:
			if skip[st] {
				return true
			}
			obj := useObject(pkg, st)
			root := rootObj(pooled, alias, obj)
			if root == nil {
				return true
			}
			reads = append(reads, read{pos: st.Pos(), obj: obj, root: root})
		}
		return true
	})

	var out []Diagnostic
	roots := make([]types.Object, 0, len(pooled))
	for obj := range pooled {
		roots = append(roots, obj)
	}
	sort.Slice(roots, func(i, j int) bool { return pooled[roots[i]].getPos < pooled[roots[j]].getPos })

	for _, root := range roots {
		f := pooled[root]
		if len(f.puts) == 0 && !f.deferred {
			continue // ownership transfer: the checkout pattern
		}
		sort.Slice(f.puts, func(i, j int) bool { return f.puts[i] < f.puts[j] })

		// Rule 1: no read of the value or an alias after the last Put
		// (unless the root name was rebound to a fresh value in between).
		if len(f.puts) > 0 {
			lastPut := f.puts[len(f.puts)-1]
			for _, r := range reads {
				if r.pos <= lastPut || rebound(f.rebinds, lastPut, r.pos) {
					continue
				}
				what := "pooled value"
				if r.obj != root {
					what = "alias of pooled value"
				}
				out = append(out, prog.diag("poolescape", r.pos,
					"%s %q used after Put in %s: the pool may already have handed the buffer to another goroutine", what, root.Name(), fs.name))
				break // one finding per root keeps loop bodies readable
			}
		}

		// Rule 2: with only non-deferred Puts, a return before the first
		// Put leaks the checkout on that path.
		if !f.deferred && len(f.puts) > 0 {
			firstPut := f.puts[0]
			for _, ret := range returns {
				if ret.Pos() > f.getPos && ret.Pos() < firstPut {
					out = append(out, prog.diag("poolescape", ret.Pos(),
						"return leaks pooled value %q checked out at line %d in %s: defer the Put or release before returning",
						root.Name(), prog.Fset.Position(f.getPos).Line, fs.name))
				}
			}
		}

		// Rule 3: with a deferred Put, returning the value or an alias
		// hands the caller a buffer that is released on return.
		if f.deferred {
			for _, ret := range returns {
				for _, res := range ret.Results {
					id := exprRootIdent(res)
					if id == nil {
						continue
					}
					if rootObj(pooled, alias, useObject(pkg, id)) == root {
						out = append(out, prog.diag("poolescape", ret.Pos(),
							"%s returns pooled value %q (or an alias) that the deferred Put releases on return", fs.name, root.Name()))
					}
				}
			}
		}
	}
	return out
}

// rootObj maps an object to its pooled root: itself when pooled, the
// alias target when aliased, nil otherwise.
func rootObj(pooled map[types.Object]*poolFacts, alias map[types.Object]types.Object, obj types.Object) types.Object {
	if obj == nil {
		return nil
	}
	if _, ok := pooled[obj]; ok {
		return obj
	}
	return alias[obj]
}

// rebound reports whether any rebind position falls in (after, before).
func rebound(rebinds []token.Pos, after, before token.Pos) bool {
	for _, p := range rebinds {
		if p > after && p < before {
			return true
		}
	}
	return false
}
