package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DefaultKernelPackages are the packages under a bit-identical output
// guarantee: the training kernels (Config.Parallelism trains ==-equal
// models at every worker count), the crawl path (same seeds, same
// corpus — including kill-and-resume and injected-fault replays), and the
// shared resilience primitives both the crawl and the serving gateway
// replay faults through (seeded jitter, schedule hashing, the
// request-count breaker). Nondeterministic iteration order or
// nondeterministic inputs inside them would break those guarantees, so
// the determinism analyzers are scoped here. The lifecycle orchestrator
// belongs to the set too: its manifests, gate reports and promotion
// decisions must be bit-identical across same-seed runs, which holds
// only while the package itself stays clock- and randomness-free. The
// acmatch automaton joins because prefiltered extraction is bit-identical
// to plain extraction only while its construction and scan order stay
// deterministic. The gateway completes the serving path: its breaker,
// canary and reload decisions replay deterministically in the chaos
// suites only while every clock it consults is an injected one, so plain
// wall-clock reads there need a reasoned exemption, not a free pass.
// Admission control joins for the same reason: the abuse-chaos suite
// replays bit-identical shed/block/recover sequences, which holds only
// while every limiter decision reads the injected clock and every jitter
// draw comes from the seeded generator. The fleet front joins last: its
// routing ring, failover order, retry jitter and probe cadence are all
// functions of (seed, dispatch count), and the fleet-chaos suite pins
// its verdict stream bit-identical to a single instance — a stray
// wall-clock or map-order dependency there breaks that parity oracle.
var DefaultKernelPackages = []string{
	"internal/matrix",
	"internal/ml",
	"internal/cluster",
	"internal/feature",
	"internal/acmatch",
	"internal/crawl",
	"internal/faultify",
	"internal/resilience",
	"internal/lifecycle",
	"internal/gateway",
	"internal/admission",
	"internal/fleet",
}

func isKernelPackage(pkg *Package, kernel []string) bool {
	for _, k := range kernel {
		if pkg.Path == k || strings.HasSuffix(pkg.Path, "/"+k) {
			return true
		}
	}
	return false
}

// MapOrderAnalyzer flags float accumulation inside a range over a map in
// kernel packages (check "maporder"). Go randomizes map iteration order
// and float addition is not associative, so `for _, v := range m { sum +=
// v }` yields different bits run to run — exactly what the ==-parity
// tests would catch only probabilistically.
func MapOrderAnalyzer(kernel []string) *CodeAnalyzer {
	return &CodeAnalyzer{
		Name: "maporder",
		Doc:  "float accumulation over map iteration order is nondeterministic",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			if !isKernelPackage(pkg, kernel) {
				return nil
			}
			var out []Diagnostic
			inspectFiles(pkg, func(f *ast.File, n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				for _, d := range findFloatAccumulation(prog, pkg, rng) {
					out = append(out, d)
				}
				return true
			})
			return out
		},
	}
}

// findFloatAccumulation reports op-assignments (+=, -=, *=, /=) of float
// type inside the range body whose target is declared outside the range
// statement — an accumulator whose value depends on iteration order.
func findFloatAccumulation(prog *Program, pkg *Package, rng *ast.RangeStmt) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			tv, ok := pkg.Info.Types[lhs]
			if !ok || !isFloat(tv.Type) {
				continue
			}
			root, _ := lhsRoot(lhs)
			if root == nil {
				continue
			}
			obj := pkg.Info.Uses[root]
			if obj == nil {
				obj = pkg.Info.Defs[root]
			}
			if obj == nil || insideNode(obj.Pos(), rng) {
				continue // per-iteration temporary, order-independent
			}
			out = append(out, prog.diag("maporder", as.Pos(),
				"float accumulation into %q inside a map range: iteration order is random, so the sum's bits vary run to run", root.Name))
		}
		return true
	})
	return out
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func insideNode(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos <= n.End()
}

// WallTimeAnalyzer flags wall-clock reads (time.Now, time.Since,
// time.Until) in kernel packages (check "walltime"): trained models must
// be functions of their inputs alone.
func WallTimeAnalyzer(kernel []string) *CodeAnalyzer {
	banned := map[string]bool{"time.Now": true, "time.Since": true, "time.Until": true}
	return &CodeAnalyzer{
		Name: "walltime",
		Doc:  "wall-clock reads make kernel output depend on when it ran",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			if !isKernelPackage(pkg, kernel) {
				return nil
			}
			var out []Diagnostic
			inspectFiles(pkg, func(f *ast.File, n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && banned[fn.FullName()] {
					out = append(out, prog.diag("walltime", sel.Pos(),
						"%s in kernel package %s: wall-clock input breaks the bit-identical parity guarantee", fn.FullName(), pkg.Name))
				}
				return true
			})
			return out
		},
	}
}

// RandSourceAnalyzer flags math/rand imports in kernel packages (check
// "randsource"). Seeded generators belong in the callers (attackgen, the
// experiment harness); the kernels must be deterministic functions of
// their arguments.
func RandSourceAnalyzer(kernel []string) *CodeAnalyzer {
	banned := map[string]bool{"math/rand": true, "math/rand/v2": true}
	return &CodeAnalyzer{
		Name: "randsource",
		Doc:  "math/rand in a kernel package undermines reproducible training",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			if !isKernelPackage(pkg, kernel) {
				return nil
			}
			var out []Diagnostic
			for _, f := range pkg.Files {
				for _, imp := range f.Imports {
					path := strings.Trim(imp.Path.Value, `"`)
					if banned[path] {
						out = append(out, prog.diag("randsource", imp.Pos(),
							"kernel package %s imports %s: randomness belongs in callers, not training kernels", pkg.Name, path))
					}
				}
			}
			return out
		},
	}
}
