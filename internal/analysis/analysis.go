// Package analysis implements psigenelint: a stdlib-only analyzer suite
// (go/ast, go/parser, go/token, go/types) enforcing this repository's
// hand-written invariants by machine.
//
// Two analyzer families:
//
//   - Code analyzers walk the module's own source: determinism in the
//     kernel packages (no map-iteration feeding float accumulation, no
//     wall-clock or math/rand — ordering nondeterminism would break the
//     bit-identical parallel-training guarantee), parallel hygiene in
//     *parallel*.go files (goroutines may write shared state only through
//     preassigned index slots), and error discipline everywhere (no
//     discarded error returns, fmt.Errorf wrapping uses %w).
//
//   - Catalog analyzers load the compiled feature catalog and trained
//     signatures and report the signature-set flaws of Agarwal & Hussain
//     ("Identification of Flaws in the Design of Signatures for Intrusion
//     Detection Systems"): duplicate and corpus-subsumed patterns,
//     never-matching features, redundant case-insensitive character
//     classes, and dead signatures whose weights zero out every feature.
//
// Any diagnostic can be suppressed in source with
//
//	//lint:ignore <check> <reason>
//
// on the flagged line or the line above it, or file-wide with
// //lint:file-ignore <check> <reason>.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a named check, a position, and a message.
type Diagnostic struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"pos"`
	Message string         `json:"message"`
}

// String renders the diagnostic in file:line:col: check: message form.
func (d Diagnostic) String() string {
	pos := d.Pos.String()
	if d.Pos.Filename == "" && !d.Pos.IsValid() {
		pos = "-"
	}
	return fmt.Sprintf("%s: %s: %s", pos, d.Check, d.Message)
}

// SortDiagnostics orders findings by file, line, column, check name, then
// message — a total order, so equal inputs always render byte-identically.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// CodeAnalyzer is one source-walking check over a type-checked package.
type CodeAnalyzer struct {
	// Name is the check identifier used in output and lint:ignore comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports the findings for one package.
	Run func(prog *Program, pkg *Package) []Diagnostic
}

// CodeAnalyzers returns the full code-analyzer suite with the default
// kernel-package set.
func CodeAnalyzers() []*CodeAnalyzer {
	return []*CodeAnalyzer{
		MapOrderAnalyzer(DefaultKernelPackages),
		WallTimeAnalyzer(DefaultKernelPackages),
		RandSourceAnalyzer(DefaultKernelPackages),
		SharedWriteAnalyzer(),
		LoopCaptureAnalyzer(),
		ErrCheckAnalyzer(),
		ErrWrapAnalyzer(),
		PoolEscapeAnalyzer(),
		AtomicGuardAnalyzer(DefaultProbeGatedPackages),
		LockOrderAnalyzer(),
		MutexSpanAnalyzer(),
		LeakCheckAnalyzer(DefaultConcurrencyPackages()),
	}
}

// RunCode applies the analyzers to the given packages, drops suppressed
// findings, and returns the rest sorted by position.
func (prog *Program) RunCode(pkgs []*Package, analyzers []*CodeAnalyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			for _, d := range a.Run(prog, pkg) {
				if !prog.Suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	SortDiagnostics(out)
	return out
}

// Filter keeps only diagnostics whose check name is in the allow set; an
// empty set keeps everything.
func Filter(ds []Diagnostic, checks map[string]bool) []Diagnostic {
	if len(checks) == 0 {
		return ds
	}
	out := ds[:0]
	for _, d := range ds {
		if checks[d.Check] {
			out = append(out, d)
		}
	}
	return out
}

// suppressionIndex records every lint:ignore directive found while
// parsing, keyed by file and line.
type suppressionIndex struct {
	// byLine maps file -> line -> set of suppressed check names. A
	// directive on line L covers diagnostics on L (end-of-line comment)
	// and L+1 (comment on its own line above the flagged statement).
	byLine map[string]map[int]map[string]bool
	// byFile maps file -> checks suppressed for the whole file.
	byFile map[string]map[string]bool
}

const (
	ignorePrefix     = "lint:ignore "
	fileIgnorePrefix = "lint:file-ignore "
)

func buildSuppressionIndex(fset *token.FileSet, pkgs []*Package) *suppressionIndex {
	idx := &suppressionIndex{
		byLine: make(map[string]map[int]map[string]bool),
		byFile: make(map[string]map[string]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx.addComment(fset.Position(c.Pos()), c.Text)
				}
			}
		}
	}
	return idx
}

func (idx *suppressionIndex) addComment(pos token.Position, text string) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimPrefix(strings.TrimSuffix(text, "*/"), "/*")
	text = strings.TrimSpace(text)
	switch {
	case strings.HasPrefix(text, ignorePrefix):
		check, reason := splitDirective(text[len(ignorePrefix):])
		if check == "" || reason == "" {
			return // a reason is mandatory; a bare ignore suppresses nothing
		}
		lines := idx.byLine[pos.Filename]
		if lines == nil {
			lines = make(map[int]map[string]bool)
			idx.byLine[pos.Filename] = lines
		}
		if lines[pos.Line] == nil {
			lines[pos.Line] = make(map[string]bool)
		}
		lines[pos.Line][check] = true
	case strings.HasPrefix(text, fileIgnorePrefix):
		check, reason := splitDirective(text[len(fileIgnorePrefix):])
		if check == "" || reason == "" {
			return
		}
		if idx.byFile[pos.Filename] == nil {
			idx.byFile[pos.Filename] = make(map[string]bool)
		}
		idx.byFile[pos.Filename][check] = true
	}
}

func splitDirective(s string) (check, reason string) {
	s = strings.TrimSpace(s)
	check, reason, _ = strings.Cut(s, " ")
	return check, strings.TrimSpace(reason)
}

// Suppressed reports whether a lint:ignore directive covers the
// diagnostic: same check name on the diagnostic's line, the line directly
// above it, or a file-wide directive.
func (prog *Program) Suppressed(d Diagnostic) bool {
	if prog.suppression == nil || d.Pos.Filename == "" {
		return false
	}
	if prog.suppression.byFile[d.Pos.Filename][d.Check] {
		return true
	}
	lines := prog.suppression.byLine[d.Pos.Filename]
	return lines[d.Pos.Line][d.Check] || lines[d.Pos.Line-1][d.Check]
}

// diag builds a Diagnostic at a token.Pos.
func (prog *Program) diag(check string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Check: check, Pos: prog.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
}

// inspectFiles runs fn over every node of every file in the package.
func inspectFiles(pkg *Package, fn func(f *ast.File, n ast.Node) bool) {
	for _, f := range pkg.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool { return fn(file, n) })
	}
}
