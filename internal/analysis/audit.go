package analysis

import (
	"go/token"

	"psigene/internal/core"
)

// AuditModel is the library entrypoint for auditing a trained signature
// set, shared by the psigenelint driver (-model) and the lifecycle gate
// so both run one implementation of the catalog checks: deadsig over the
// trained signatures, plus — when a probe corpus is supplied — the
// corpus-driven nevermatch and subsumed checks over the model's observed
// feature set. origin labels every diagnostic (a model path or artifact
// version). Diagnostics carry no source anchors — the observed set is a
// runtime object, not catalog source — so gate callers consume counts,
// not suppressions.
func AuditModel(m *core.Model, corpus []string, origin string) []Diagnostic {
	out := CheckSignatures(m, origin)
	if len(corpus) > 0 {
		pos := make([]token.Position, len(m.Features.Features))
		valid := make([]bool, len(m.Features.Features))
		for i := range pos {
			pos[i] = token.Position{Filename: origin}
			valid[i] = true
		}
		out = append(out, checkCorpusFlaws(m.Features, corpus, pos, valid)...)
	}
	SortDiagnostics(out)
	return out
}

// CountByCheck tallies diagnostics per check name; gate code keys floors
// off these counts instead of re-implementing the checks.
func CountByCheck(ds []Diagnostic) map[string]int {
	out := make(map[string]int)
	for _, d := range ds {
		out[d.Check]++
	}
	return out
}
