package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// errorType is the built-in error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorType) && !types.Identical(t, types.Typ[types.UntypedNil])
}

// resultHasError reports whether a call's result includes an error value.
func resultHasError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// calleeFunc resolves the called function object, or nil for indirect
// calls and conversions.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// errCheckExempt lists callees whose discarded errors are accepted
// policy: printing (the error belongs to the writer's owner, and the CLIs
// write to stdout) and the never-failing in-memory writers.
func errCheckExempt(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	name := fn.FullName()
	if strings.HasPrefix(name, "fmt.Print") || strings.HasPrefix(name, "fmt.Fprint") {
		return true
	}
	return strings.HasPrefix(name, "(*strings.Builder).") ||
		strings.HasPrefix(name, "(*bytes.Buffer).")
}

// ErrCheckAnalyzer flags call statements that discard an error result
// (check "errcheck"): a dropped error is a silently ignored failure.
// Deferred calls are exempt (the convention for best-effort cleanup), as
// are explicit `_ =` discards, which at least make the decision visible.
func ErrCheckAnalyzer() *CodeAnalyzer {
	return &CodeAnalyzer{
		Name: "errcheck",
		Doc:  "no discarded error returns",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			flag := func(call *ast.CallExpr) {
				if !resultHasError(pkg, call) {
					return
				}
				fn := calleeFunc(pkg, call)
				if errCheckExempt(fn) {
					return
				}
				name := "call"
				if fn != nil {
					name = fn.FullName()
				}
				out = append(out, prog.diag("errcheck", call.Pos(),
					"result of %s includes an error that is discarded", name))
			}
			inspectFiles(pkg, func(f *ast.File, n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if call, ok := st.X.(*ast.CallExpr); ok {
						flag(call)
					}
				case *ast.GoStmt:
					flag(st.Call)
				}
				return true
			})
			return out
		},
	}
}

// ErrWrapAnalyzer flags fmt.Errorf calls that format an error argument
// without a %w verb (check "errwrap"): %v flattens the chain, so
// errors.Is/As on the result stop working.
func ErrWrapAnalyzer() *CodeAnalyzer {
	return &CodeAnalyzer{
		Name: "errwrap",
		Doc:  "fmt.Errorf must wrap error arguments with %w",
		Run: func(prog *Program, pkg *Package) []Diagnostic {
			var out []Diagnostic
			inspectFiles(pkg, func(f *ast.File, n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) < 2 {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || fn.FullName() != "fmt.Errorf" {
					return true
				}
				format, ok := constantString(pkg, call.Args[0])
				if !ok || strings.Contains(format, "%w") {
					return true
				}
				for _, arg := range call.Args[1:] {
					tv, ok := pkg.Info.Types[arg]
					if ok && tv.Type != nil && isErrorType(tv.Type) {
						out = append(out, prog.diag("errwrap", call.Pos(),
							"fmt.Errorf formats an error argument without %%w: the cause is flattened out of the error chain"))
						break
					}
				}
				return true
			})
			return out
		},
	}
}

// constantString evaluates an expression to a compile-time string.
func constantString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
