package experiments

import (
	"fmt"
	"net/http/httptest"
	"time"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/gateway"
	"psigene/internal/lifecycle"
	"psigene/internal/traffic"
	"psigene/internal/webapp"
)

// LifecycleRoundBench is one crawl→retrain→gate→canary round of the
// lifecycle benchmark, with wall-clock timings taken from outside the
// (clock-free) lifecycle package.
type LifecycleRoundBench struct {
	Round          int     `json:"round"`
	Action         string  `json:"action"`
	Version        string  `json:"version"`
	FreshSamples   int     `json:"freshSamples"`
	RoundMillis    float64 `json:"roundMillis"`
	MinToolTPR     float64 `json:"minToolTpr"`
	FPR            float64 `json:"fpr"`
	CanarySampled  int64   `json:"canarySampled"`
	CanaryAgree    int64   `json:"canaryAgree"`
	ReplayRequests int     `json:"replayRequests"`
	ReplayMillis   float64 `json:"replayMillis"`
	ReplayRPS      float64 `json:"replayRps"`
}

// LifecycleBenchResult is the machine-readable output of the lifecycle
// benchmark (BENCH_lifecycle.json).
type LifecycleBenchResult struct {
	Seed            int64                 `json:"seed"`
	TrainAttacks    int                   `json:"trainAttacks"`
	TrainBenign     int                   `json:"trainBenign"`
	Signatures      int                   `json:"signatures"`
	BootstrapMillis float64               `json:"bootstrapMillis"`
	ServingVersion  string                `json:"servingVersion"`
	Rounds          []LifecycleRoundBench `json:"rounds"`
}

// LifecycleBenchmark runs the full artifact lifecycle — bootstrap into a
// versioned store, then `rounds` rounds of synthetic fresh samples,
// incremental retrain, gate validation and canary promotion over an
// in-process gateway — and reports per-stage latencies plus gateway
// replay throughput. The store lives in dir (a scratch directory the
// caller owns).
func LifecycleBenchmark(dir string, seed int64, rounds int) (*LifecycleBenchResult, error) {
	store, err := lifecycle.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	runner := lifecycle.NewRunner(store,
		lifecycle.GenSource{Profile: attackgen.CrawlProfile(), Seed: seed + 100, N: 200},
		lifecycle.RunnerConfig{
			Gate: lifecycle.GateConfig{
				MinTPR: 0.85, MaxFPR: 0.05,
				Seed: seed + 200, ProbeSamples: 250,
			},
			Canary: lifecycle.CanaryOptions{Fraction: 1, Seed: seed + 300, MaxRegressions: 15},
		})

	res := &LifecycleBenchResult{Seed: seed, TrainAttacks: 1500, TrainBenign: 3000}
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), seed).Requests(res.TrainAttacks)
	benign := traffic.NewGenerator(seed + 1).Requests(res.TrainBenign)
	start := time.Now()
	man, err := runner.Bootstrap(attacks, benign, core.Config{})
	if err != nil {
		return nil, fmt.Errorf("bootstrap: %w", err)
	}
	res.BootstrapMillis = float64(time.Since(start).Microseconds()) / 1000
	res.Signatures = man.Signatures

	up := httptest.NewServer(webapp.New(30))
	defer up.Close()
	m, cman, err := runner.CurrentDetector()
	if err != nil {
		return nil, err
	}
	gw, err := gateway.New(up.URL, m, gateway.Options{
		Client: up.Client(), ModelVersion: cman.Version, ModelSHA256: cman.ModelSHA256,
	})
	if err != nil {
		return nil, err
	}
	runner.AttachGateway(gw)

	const replayBenign, replayAttacks = 300, 60
	for i := 1; i <= rounds; i++ {
		var replayed time.Duration
		roundStart := time.Now()
		d, err := runner.Round(func() error {
			replayStart := time.Now()
			lifecycle.ReplayMix(gw, replayBenign, replayAttacks, seed+400+int64(i))
			replayed = time.Since(replayStart)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", i, err)
		}
		rb := LifecycleRoundBench{
			Round:        d.Round,
			Action:       d.Action,
			Version:      d.Version,
			FreshSamples: d.FreshSamples,
			RoundMillis:  float64(time.Since(roundStart).Microseconds()) / 1000,
		}
		if g := d.Gate; g != nil {
			rb.MinToolTPR = 1
			for _, tr := range g.Tools {
				if tr.TPR < rb.MinToolTPR {
					rb.MinToolTPR = tr.TPR
				}
			}
			rb.FPR = g.FPR
		}
		if c := d.Canary; c != nil {
			rb.CanarySampled = c.Sampled
			rb.CanaryAgree = c.Agree
			rb.ReplayRequests = replayBenign + replayAttacks
			rb.ReplayMillis = float64(replayed.Microseconds()) / 1000
			if replayed > 0 {
				rb.ReplayRPS = float64(rb.ReplayRequests) / replayed.Seconds()
			}
		}
		res.Rounds = append(res.Rounds, rb)
	}
	res.ServingVersion = gw.Snapshot().ModelVersion
	return res, nil
}
