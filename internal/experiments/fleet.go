package experiments

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/fleet"
	"psigene/internal/gateway"
	"psigene/internal/traffic"
)

// The fleet benchmark measures what the multi-replica front costs and
// what it buys. Costs: the per-request routing overhead of serving the
// same benign-dominated mix through a three-replica front vs. a bare
// gateway (hash, ring walk, health check, header stamp), and the
// failover path's extra dispatch when a caller's home replica is down.
// Buys: the coordinated two-phase reload's fanout time across the fleet
// and the ring's load spread — the committed JSON pins both so a
// routing or reload regression shows up as a diff.

// FleetBenchResult is the machine-readable output of the fleet
// benchmark (BENCH_fleet.json).
type FleetBenchResult struct {
	Seed     int64 `json:"seed"`
	Replicas int   `json:"replicas"`
	// Cases: bare gateway, fleet front, fleet front with the home
	// replica of every caller killed (pure failover path).
	Cases []FastpathCase `json:"cases"`
	// FrontOverheadPct is the fleet-front vs. bare-gateway ns/op delta,
	// as a percentage of the bare-gateway baseline.
	FrontOverheadPct float64 `json:"frontOverheadPct"`
	// FailoverPenaltyPct is the one-replica-down vs. all-up fleet ns/op
	// delta: the marginal cost of the second dispatch (backoff sleeps
	// are injected as no-ops so this times the code path, not a timer).
	FailoverPenaltyPct float64 `json:"failoverPenaltyPct"`
	// ReloadFanoutMillis is the mean wall time of a coordinated
	// probe-then-commit reload across all replicas.
	ReloadFanoutMillis float64 `json:"reloadFanoutMillis"`
	ReloadRounds       int     `json:"reloadRounds"`
	// Spread is the per-replica share of the all-up fleet run's
	// requests, in routing order — pins the ring's balance.
	Spread []int64 `json:"spread"`
}

// fleetBenchFront builds n in-memory-upstream gateways behind a front
// with no-op failover sleeps (the benchmark times dispatching, not
// timers).
func fleetBenchFront(model *core.Model, n int, seed int64) (*fleet.Front, error) {
	gws := make([]*gateway.Gateway, n)
	for i := range gws {
		var err error
		gws[i], err = gateway.New("http://upstream.invalid", model, gateway.Options{
			Client: &http.Client{Transport: memUpstream{}},
		})
		if err != nil {
			return nil, err
		}
	}
	return fleet.New(gws, fleet.Options{
		Seed:  seed,
		Sleep: func(time.Duration) {},
	})
}

// FleetBenchmark measures the fleet front: routing overhead vs. a bare
// gateway, the failover path, reload fanout time, and ring spread.
func FleetBenchmark(seed int64) (*FleetBenchResult, error) {
	const replicas = 3
	res := &FleetBenchResult{Seed: seed, Replicas: replicas}

	record := func(name string, r testing.BenchmarkResult) FastpathCase {
		c := FastpathCase{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.NsPerOp() > 0 {
			c.OpsPerSec = 1e9 / float64(r.NsPerOp())
		}
		res.Cases = append(res.Cases, c)
		return c
	}

	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), seed).Requests(1200)
	benign := traffic.NewGenerator(seed + 1).Requests(1500)
	model, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	mix := fastpathMix(seed+10, 950, 50)
	remotes := make([]string, 1024)
	for i := range remotes {
		remotes[i] = fmt.Sprintf("198.%d.%d.%d:1234", i%200, (i*7)%251, (i*13)%253)
	}
	serveBench := func(h http.Handler) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req := mix[i%len(mix)]
				target := req.Path
				if target == "" {
					target = "/"
				}
				if req.RawQuery != "" {
					target += "?" + req.RawQuery
				}
				hr := httptest.NewRequest(http.MethodGet, target, nil)
				hr.RemoteAddr = remotes[i%len(remotes)]
				h.ServeHTTP(httptest.NewRecorder(), hr)
			}
		})
	}

	single, err := gateway.New("http://upstream.invalid", model, gateway.Options{
		Client: &http.Client{Transport: memUpstream{}},
	})
	if err != nil {
		return nil, err
	}
	frontUp, err := fleetBenchFront(model, replicas, seed)
	if err != nil {
		return nil, err
	}
	// The failover front kills replica 0; the third of callers homed
	// there pay the skip-and-retry path while the rest route normally —
	// the realistic one-replica-outage mix, not a worst case.
	frontDown, err := fleetBenchFront(model, replicas, seed)
	if err != nil {
		return nil, err
	}
	if err := frontDown.Kill(0); err != nil {
		return nil, err
	}

	// Scoring dominates the op and single runs wobble more than the
	// routing delta; interleave rounds and keep the fastest of each, the
	// same estimator the abuse benchmark uses.
	bare, up, down := serveBench(single), serveBench(frontUp), serveBench(frontDown)
	for i := 0; i < 3; i++ {
		if r := serveBench(single); r.NsPerOp() < bare.NsPerOp() {
			bare = r
		}
		if r := serveBench(frontUp); r.NsPerOp() < up.NsPerOp() {
			up = r
		}
		if r := serveBench(frontDown); r.NsPerOp() < down.NsPerOp() {
			down = r
		}
	}
	b := record("gateway/mix/single", bare)
	u := record("fleet/mix/3-replicas", up)
	d := record("fleet/mix/3-replicas/one-down", down)
	if b.NsPerOp > 0 {
		res.FrontOverheadPct = 100 * (u.NsPerOp - b.NsPerOp) / b.NsPerOp
	}
	if u.NsPerOp > 0 {
		res.FailoverPenaltyPct = 100 * (d.NsPerOp - u.NsPerOp) / u.NsPerOp
	}
	for _, rep := range frontUp.Snapshot().ReplicaStates {
		res.Spread = append(res.Spread, rep.Served)
	}

	// Coordinated reload fanout: probe the candidate on every replica,
	// then commit all of them under the serve barrier. Two alternating
	// models so every round genuinely swaps.
	alt, err := core.Train(
		attackgen.NewGenerator(attackgen.SQLMapProfile(), seed+2).Requests(1200),
		traffic.NewGenerator(seed+3).Requests(1500),
		core.Config{})
	if err != nil {
		return nil, fmt.Errorf("train alternate: %w", err)
	}
	const rounds = 10
	res.ReloadRounds = rounds
	start := time.Now()
	for i := 0; i < rounds; i++ {
		m, v := model, fmt.Sprintf("bench-a%d", i)
		if i%2 == 0 {
			m, v = alt, fmt.Sprintf("bench-b%d", i)
		}
		if _, err := frontUp.SwapAllTagged(m, v, ""); err != nil {
			return nil, fmt.Errorf("reload round %d: %w", i, err)
		}
	}
	res.ReloadFanoutMillis = float64(time.Since(start).Nanoseconds()) / 1e6 / rounds
	return res, nil
}
