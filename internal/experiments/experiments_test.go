package experiments

import (
	"strings"
	"testing"
)

// testScale keeps experiment tests fast while exercising every code path.
func testScale() Scale {
	return Scale{
		TrainAttacks: 1000,
		TrainBenign:  2500,
		SQLMapTests:  400,
		ArachniTests: 200,
		VegaTests:    200,
		BenignTests:  4000,
		Seed:         1,
	}
}

var sharedEnv *Env

func testEnv(t *testing.T) *Env {
	t.Helper()
	if sharedEnv != nil {
		return sharedEnv
	}
	env, err := Setup(testScale())
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	sharedEnv = env
	return env
}

func TestSetup(t *testing.T) {
	env := testEnv(t)
	if len(env.TrainAttackReqs) != 1000 || len(env.Arachni) != 400 {
		t.Fatalf("dataset sizes wrong: %d train, %d arachni", len(env.TrainAttackReqs), len(env.Arachni))
	}
	if len(env.Model9.Signatures) == 0 {
		t.Fatal("model has no signatures")
	}
	if len(env.Model7.Signatures) >= len(env.Model9.Signatures) && len(env.Model9.Signatures) > 2 {
		t.Fatal("Model7 must be a strict subset when possible")
	}
	if len(env.Detectors()) != 5 {
		t.Fatalf("Detectors()=%d, want 5", len(env.Detectors()))
	}
}

func TestTable1(t *testing.T) {
	tbl, err := Table1(1)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	out := tbl.String()
	if !strings.Contains(out, "CVE-2012-3554") {
		t.Fatalf("Table I missing CVE rows:\n%s", out)
	}
	if !strings.Contains(out, "yes") {
		t.Fatalf("crawl did not cover any known CVE:\n%s", out)
	}
}

func TestTable2(t *testing.T) {
	out := Table2().String()
	if !strings.Contains(out, "477") {
		t.Fatalf("Table II must report the 477-candidate census:\n%s", out)
	}
	if !strings.Contains(out, "MySQL Reserved Words") {
		t.Fatalf("Table II missing sources:\n%s", out)
	}
}

func TestTable3(t *testing.T) {
	env := testEnv(t)
	tbl, err := Table3(env)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	out := tbl.String()
	if !strings.Contains(out, "signature") || !strings.Contains(out, "(theta)") {
		t.Fatalf("Table III incomplete:\n%s", out)
	}
}

func TestTable4(t *testing.T) {
	out := Table4().String()
	for _, want := range []string{"Bro", "Snort", "Emerging Threats", "ModSecurity", "4231", "79", "34", "6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table IV missing %q:\n%s", want, out)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	env := testEnv(t)
	rows, tbl := Table5(env)
	if len(rows) != 5 {
		t.Fatalf("Table V has %d rows", len(rows))
	}
	byName := map[string]AccuracyRow{}
	for _, r := range rows {
		switch {
		case strings.HasPrefix(r.System, "ModSecurity"):
			byName["modsec"] = r
		case strings.HasPrefix(r.System, "Bro"):
			byName["bro"] = r
		case strings.HasPrefix(r.System, "Snort"):
			byName["snort"] = r
		case strings.HasPrefix(r.System, "pSigene"):
			if _, ok := byName["psigene"]; !ok || r.TPRSQLMap > byName["psigene"].TPRSQLMap {
				byName["psigene"] = r
			}
		}
	}
	// The paper's comparative shape:
	// ModSec > pSigene > Snort-ET and pSigene > Bro on TPR.
	if byName["modsec"].TPRSQLMap <= byName["psigene"].TPRSQLMap {
		t.Errorf("ModSec TPR %.3f must exceed pSigene %.3f", byName["modsec"].TPRSQLMap, byName["psigene"].TPRSQLMap)
	}
	if byName["psigene"].TPRSQLMap <= byName["snort"].TPRSQLMap {
		t.Errorf("pSigene TPR %.3f must exceed Snort-ET %.3f", byName["psigene"].TPRSQLMap, byName["snort"].TPRSQLMap)
	}
	if byName["psigene"].TPRSQLMap <= byName["bro"].TPRSQLMap {
		t.Errorf("pSigene TPR %.3f must exceed Bro %.3f", byName["psigene"].TPRSQLMap, byName["bro"].TPRSQLMap)
	}
	// Bro has no false positives; Snort-ET has the most.
	if byName["bro"].FPR != 0 {
		t.Errorf("Bro FPR %.5f, want 0", byName["bro"].FPR)
	}
	for _, other := range []string{"modsec", "psigene"} {
		if byName["snort"].FPR < byName[other].FPR {
			t.Errorf("Snort-ET FPR %.5f must be the highest (vs %s %.5f)", byName["snort"].FPR, other, byName[other].FPR)
		}
	}
	if tbl.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestTable6(t *testing.T) {
	env := testEnv(t)
	out := Table6(env).String()
	if !strings.Contains(out, "Features (biclustering)") {
		t.Fatalf("Table VI incomplete:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4+len(env.Model9.Signatures) {
		t.Fatalf("Table VI missing signature rows:\n%s", out)
	}
}

func TestFigure2(t *testing.T) {
	env := testEnv(t)
	ascii, svg, res, err := Figure2(env, 200)
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if !strings.Contains(ascii, "heat map") || !strings.HasPrefix(svg, "<svg") {
		t.Fatal("Figure 2 renderings incomplete")
	}
	if len(res.Biclusters) == 0 {
		t.Fatal("no biclusters in Figure 2")
	}
}

func TestFigure3(t *testing.T) {
	env := testEnv(t)
	rocs, err := Figure3(env)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if len(rocs) != len(env.Model9.Signatures) {
		t.Fatalf("got %d curves for %d signatures", len(rocs), len(env.Model9.Signatures))
	}
	for _, r := range rocs {
		if r.AUC < 0 || r.AUC > 1 {
			t.Fatalf("signature %d AUC=%v", r.SignatureID, r.AUC)
		}
		if len(r.Points) < 2 {
			t.Fatalf("signature %d has %d ROC points", r.SignatureID, len(r.Points))
		}
	}
	// At least one signature must rank well (paper: signature 6 performs
	// well).
	best := 0.0
	for _, r := range rocs {
		if r.AUC > best {
			best = r.AUC
		}
	}
	if best < 0.7 {
		t.Fatalf("best AUC %.3f — signatures should rank attacks well", best)
	}
}

func TestFigure4(t *testing.T) {
	env := testEnv(t)
	rows := Figure4(env)
	if len(rows) != len(env.Model9.Signatures) {
		t.Fatalf("got %d rows", len(rows))
	}
	prev := 0.0
	for i, r := range rows {
		if r.Cumulative+1e-12 < prev {
			t.Fatalf("cumulative TPR decreased at row %d", i)
		}
		if r.Contribution < -1e-12 {
			t.Fatalf("negative contribution at row %d", i)
		}
		prev = r.Cumulative
	}
	// Individual TPRs are sorted descending.
	for i := 1; i < len(rows); i++ {
		if rows[i].Individual > rows[i-1].Individual+1e-12 {
			t.Fatalf("rows not sorted by individual TPR")
		}
	}
	// The union of all signatures equals the model's TPR.
	final := rows[len(rows)-1].Cumulative
	if final <= 0 {
		t.Fatal("zero cumulative TPR")
	}
}

func TestExperiment2Incremental(t *testing.T) {
	env := testEnv(t)
	rows, err := Experiment2(env)
	if err != nil {
		t.Fatalf("Experiment2: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[2].TPR+0.02 < rows[0].TPR {
		t.Fatalf("incremental learning reduced TPR: %.3f -> %.3f", rows[0].TPR, rows[2].TPR)
	}
}

func TestExperiment3Perdisci(t *testing.T) {
	env := testEnv(t)
	res, err := Experiment3(env)
	if err != nil {
		t.Fatalf("Experiment3: %v", err)
	}
	if res.FinalSignatures == 0 {
		t.Fatal("no Perdisci signatures")
	}
	// The paper's shape: TPR on unseen samples far below pSigene's and far
	// below its own train-set TPR; FPR at (or near) zero.
	_, tbl := Table5(env)
	_ = tbl
	if res.TPRUnseen >= res.TPRTrain {
		t.Errorf("Perdisci unseen TPR %.3f >= train TPR %.3f", res.TPRUnseen, res.TPRTrain)
	}
	if res.TPRUnseen > 0.5 {
		t.Errorf("Perdisci unseen TPR %.3f — should be far below pSigene's", res.TPRUnseen)
	}
	if res.FPR > 0.001 {
		t.Errorf("Perdisci FPR %.5f, want ~0", res.FPR)
	}
}

func TestExperiment4Performance(t *testing.T) {
	env := testEnv(t)
	rows := Experiment4(env, 300)
	if len(rows) != 3 {
		t.Fatalf("got %d timing rows", len(rows))
	}
	for _, r := range rows {
		if r.Avg <= 0 || r.Max < r.Avg || r.Min > r.Avg {
			t.Fatalf("inconsistent timing for %s: %+v", r.System, r)
		}
	}
	slow := Slowdown(rows)
	// The paper reports pSigene 11X slower than Bro (both ran inside Bro).
	// Our compiled count_all narrows the factor but the ordering must hold.
	// The ModSec ratio does not transfer — our ModSec engine pays Go-regexp
	// NFA costs on CRS-scale patterns that native PCRE does not — so it is
	// reported, not asserted (see EXPERIMENTS.md).
	if x := slow["Bro"]; x <= 1 {
		t.Errorf("pSigene should be slower than Bro, got %.2fX", x)
	}
}

func TestAblations(t *testing.T) {
	env := testEnv(t)
	bin, err := AblationBinaryFeatures(env)
	if err != nil {
		t.Fatalf("binary ablation: %v", err)
	}
	if bin.TPR < 0 || bin.TPR > 1 {
		t.Fatalf("binary ablation TPR=%v", bin.TPR)
	}
	glob, err := AblationGlobalLR(env)
	if err != nil {
		t.Fatalf("global LR ablation: %v", err)
	}
	if glob.TPR < 0 || glob.TPR > 1 {
		t.Fatalf("global ablation TPR=%v", glob.TPR)
	}
	sweep := ThresholdSweep(env, []float64{0.2, 0.8})
	if len(sweep) != 2 {
		t.Fatalf("sweep rows=%d", len(sweep))
	}
	// Lower threshold detects at least as much.
	if sweep[0].TPR < sweep[1].TPR {
		t.Fatalf("threshold sweep not monotone: %.3f < %.3f", sweep[0].TPR, sweep[1].TPR)
	}
}

func TestAblationLinkage(t *testing.T) {
	env := testEnv(t)
	rows, err := AblationLinkage(env)
	if err != nil {
		t.Fatalf("AblationLinkage: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 linkages", len(rows))
	}
	for _, r := range rows {
		if r.TPR < 0 || r.TPR > 1 || r.FPR < 0 || r.FPR > 1 {
			t.Fatalf("out-of-range rates: %+v", r)
		}
	}
	// The paper's UPGMA choice should not be dominated outright by single
	// linkage (which chains badly on this kind of data).
	if rows[0].TPR+0.25 < rows[1].TPR {
		t.Errorf("average linkage TPR %.3f far below single %.3f", rows[0].TPR, rows[1].TPR)
	}
}
