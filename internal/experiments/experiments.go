// Package experiments regenerates every table and figure in the paper's
// evaluation section. Each experiment is a function over a shared Env
// (datasets plus trained systems) returning a report artifact; the
// cmd/evalharness binary and the repository's benchmark harness both drive
// these functions, so the numbers in EXPERIMENTS.md come from exactly this
// code.
package experiments

import (
	"fmt"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/ruleset"
	"psigene/internal/traffic"
)

// Scale sets dataset sizes. The paper's full scale (30,000 crawled samples,
// 240,000 benign training requests, 7,200 SQLmap and 8,578 Arachni+Vega
// test samples, a 1.4M-request benign trace) is reachable with PaperScale;
// DefaultScale keeps CI runs fast while preserving every shape.
type Scale struct {
	TrainAttacks int
	TrainBenign  int
	SQLMapTests  int
	ArachniTests int // Arachni and Vega are reported together, as in §III-B
	VegaTests    int
	BenignTests  int
	Seed         int64
}

// DefaultScale is the CI-friendly configuration.
func DefaultScale() Scale {
	return Scale{
		TrainAttacks: 3000,
		TrainBenign:  10000,
		SQLMapTests:  1200,
		ArachniTests: 600,
		VegaTests:    600,
		BenignTests:  20000,
		Seed:         1,
	}
}

// PaperScale matches the paper's corpus sizes (the benign trace is capped
// at 200k requests; raise it if you have the patience of a reviewer).
func PaperScale() Scale {
	return Scale{
		TrainAttacks: 30000,
		TrainBenign:  60000,
		SQLMapTests:  7200,
		ArachniTests: 4289,
		VegaTests:    4289,
		BenignTests:  200000,
		Seed:         1,
	}
}

// Env bundles the datasets and trained systems shared by the experiments.
type Env struct {
	Scale Scale

	TrainAttackReqs []httpx.Request
	TrainBenignReqs []httpx.Request
	SQLMap          []httpx.Request
	Arachni         []httpx.Request // Arachni + Vega merged
	BenignTest      []httpx.Request

	// Model9 is the full signature set ("9 signatures"); Model7 drops the
	// last two heat-map-ordered signatures ("7 signatures").
	Model9, Model7 *core.Model

	Bro     *ids.RuleEngine
	SnortET *ids.RuleEngine
	ModSec  *ids.RuleEngine
}

// Setup generates the datasets and trains every system.
func Setup(s Scale) (*Env, error) {
	env := &Env{Scale: s}

	env.TrainAttackReqs = attackgen.NewGenerator(attackgen.CrawlProfile(), s.Seed).Requests(s.TrainAttacks)
	env.TrainBenignReqs = traffic.NewGenerator(s.Seed + 1).Requests(s.TrainBenign)
	env.SQLMap = attackgen.NewGenerator(attackgen.SQLMapProfile(), s.Seed+2).Requests(s.SQLMapTests)
	env.Arachni = append(
		attackgen.NewGenerator(attackgen.ArachniProfile(), s.Seed+3).Requests(s.ArachniTests),
		attackgen.NewGenerator(attackgen.VegaProfile(), s.Seed+4).Requests(s.VegaTests)...)
	env.BenignTest = traffic.NewGenerator(s.Seed + 5).Requests(s.BenignTests)

	model, err := core.Train(env.TrainAttackReqs, env.TrainBenignReqs, core.Config{})
	if err != nil {
		return nil, fmt.Errorf("train pSigene: %w", err)
	}
	env.Model9 = model

	if n := len(model.Signatures); n > 2 {
		keep := make([]int, 0, n-2)
		for _, sig := range model.Signatures[:n-2] {
			keep = append(keep, sig.ID)
		}
		m7, err := model.WithSignatures(keep)
		if err != nil {
			return nil, fmt.Errorf("subset model: %w", err)
		}
		env.Model7 = m7
	} else {
		env.Model7 = model
	}

	if env.Bro, err = ids.NewRuleEngine(ruleset.Bro(), ids.Options{}); err != nil {
		return nil, fmt.Errorf("bro engine: %w", err)
	}
	// The paper merges the Snort and ET distributions for its Table V row;
	// ET ships fully disabled, so the merged engine loads disabled rules.
	if env.SnortET, err = ids.NewRuleEngine(ruleset.SnortET(), ids.Options{IncludeDisabled: true}); err != nil {
		return nil, fmt.Errorf("snort-et engine: %w", err)
	}
	if env.ModSec, err = ids.NewRuleEngine(ruleset.ModSecCRS(), ids.Options{}); err != nil {
		return nil, fmt.Errorf("modsec engine: %w", err)
	}
	return env, nil
}

// AttackTestSet returns the combined SQLmap + Arachni test attacks.
func (e *Env) AttackTestSet() []httpx.Request {
	out := make([]httpx.Request, 0, len(e.SQLMap)+len(e.Arachni))
	out = append(out, e.SQLMap...)
	out = append(out, e.Arachni...)
	return out
}

// Detectors returns the Table V systems in presentation order.
func (e *Env) Detectors() []ids.Detector {
	return []ids.Detector{e.ModSec, e.Model9, e.Model7, e.SnortET, e.Bro}
}
