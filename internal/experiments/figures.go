package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"psigene/internal/cluster"
	"psigene/internal/core"
	"psigene/internal/feature"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/ml"
	"psigene/internal/normalize"
	"psigene/internal/perdisci"
	"psigene/internal/report"
)

// Figure2 reproduces the heat map with two dendrograms: the training
// matrix, standardized and reordered by the two-way clustering, with the
// selected biclusters (and black holes) annotated. It returns the ASCII and
// SVG renderings plus the clustering result for inspection.
func Figure2(env *Env, maxSamples int) (ascii, svg string, res *cluster.Result, err error) {
	if maxSamples <= 0 {
		maxSamples = 600
	}
	norm := make([]string, 0, len(env.TrainAttackReqs))
	for _, r := range env.TrainAttackReqs {
		norm = append(norm, normalize.Normalize(r.Payload()))
	}
	uniq, weights := feature.Dedupe(norm)
	if len(uniq) > maxSamples {
		stride := len(uniq) / maxSamples
		var su []string
		var sw []float64
		for i := 0; i < len(uniq) && len(su) < maxSamples; i += stride {
			su = append(su, uniq[i])
			sw = append(sw, weights[i])
		}
		uniq, weights = su, sw
	}
	cat := feature.Catalog()
	ex, err := feature.NewExtractor(cat)
	if err != nil {
		return "", "", nil, err
	}
	full, err := ex.Matrix(uniq)
	if err != nil {
		return "", "", nil, err
	}
	observed, _, _, err := feature.PruneUnobserved(full, cat)
	if err != nil {
		return "", "", nil, err
	}
	res, err = cluster.Run(observed, weights, cluster.Options{})
	if err != nil {
		return "", "", nil, err
	}
	hm, err := report.NewHeatmap(observed, res)
	if err != nil {
		return "", "", nil, err
	}
	return hm.ASCII(60, 100), hm.SVG(200, 159, 4), res, nil
}

// SignatureROC is one signature's ROC curve (Figure 3).
type SignatureROC struct {
	SignatureID int
	Points      []ml.ROCPoint
	AUC         float64
}

// Figure3 reproduces the per-signature ROC curves: for each signature, its
// probability output is swept over the full test data (attacks + benign).
func Figure3(env *Env) ([]SignatureROC, error) {
	attacks := env.AttackTestSet()
	reqs := make([]httpx.Request, 0, len(attacks)+len(env.BenignTest))
	reqs = append(reqs, attacks...)
	reqs = append(reqs, env.BenignTest...)

	labels := make([]bool, len(reqs))
	vectors := make([][]float64, len(reqs))
	for i, r := range reqs {
		labels[i] = r.Malicious
		vectors[i] = env.Model9.Vector(r)
	}

	var out []SignatureROC
	for _, s := range env.Model9.Signatures {
		scores := make([]float64, len(reqs))
		for i := range reqs {
			scores[i] = s.Probability(vectors[i])
		}
		pts, err := ml.ROC(scores, labels)
		if err != nil {
			return nil, fmt.Errorf("signature %d ROC: %w", s.ID, err)
		}
		out = append(out, SignatureROC{SignatureID: s.ID, Points: pts, AUC: ml.AUC(pts)})
	}
	return out, nil
}

// CumulativeTPR is one bar of Figure 4.
type CumulativeTPR struct {
	SignatureID  int
	Individual   float64 // this signature's sole contribution to TPR
	Cumulative   float64 // TPR of the union of signatures so far
	Contribution float64 // increase over the previous cumulative value
}

// Figure4 reproduces the cumulative TPR plot: signatures sorted by
// individual detection rate, with each one's marginal contribution.
func Figure4(env *Env) []CumulativeTPR {
	attacks := env.AttackTestSet()
	vectors := make([][]float64, len(attacks))
	for i, r := range attacks {
		vectors[i] = env.Model9.Vector(r)
	}

	type sigHits struct {
		id   int
		hits []bool
		tpr  float64
	}
	var sigs []sigHits
	for _, s := range env.Model9.Signatures {
		h := sigHits{id: s.ID, hits: make([]bool, len(attacks))}
		var n int
		for i := range attacks {
			if s.Probability(vectors[i]) >= s.Threshold {
				h.hits[i] = true
				n++
			}
		}
		h.tpr = float64(n) / float64(len(attacks))
		sigs = append(sigs, h)
	}
	sort.SliceStable(sigs, func(i, j int) bool { return sigs[i].tpr > sigs[j].tpr })

	covered := make([]bool, len(attacks))
	var out []CumulativeTPR
	prev := 0.0
	for _, s := range sigs {
		for i, h := range s.hits {
			if h {
				covered[i] = true
			}
		}
		var n int
		for _, c := range covered {
			if c {
				n++
			}
		}
		cum := float64(n) / float64(len(attacks))
		out = append(out, CumulativeTPR{
			SignatureID:  s.id,
			Individual:   s.tpr,
			Cumulative:   cum,
			Contribution: cum - prev,
		})
		prev = cum
	}
	return out
}

// IncrementalResult is one row of Experiment 2.
type IncrementalResult struct {
	Label    string
	TPR, FPR float64
}

// Experiment2 reproduces incremental learning: a fresh model is trained,
// evaluated, then updated with 20% and 40% of the (shuffled) SQLmap test
// set, re-evaluating after each step. TPR should rise monotonically (within
// noise) and FPR may creep up slightly, as in the paper.
func Experiment2(env *Env) ([]IncrementalResult, error) {
	model, err := core.Train(env.TrainAttackReqs, env.TrainBenignReqs, core.Config{})
	if err != nil {
		return nil, err
	}
	out := []IncrementalResult{{
		Label: "baseline",
		TPR:   ids.Evaluate(model, env.SQLMap).TPR(),
		FPR:   ids.Evaluate(model, env.BenignTest).FPR(),
	}}

	n := len(env.SQLMap)
	steps := []struct {
		label    string
		from, to int
	}{
		{"+20% of SQLmap set", 0, n / 5},
		{"+40% of SQLmap set", n / 5, 2 * n / 5},
	}
	for _, st := range steps {
		if err := model.Update(env.SQLMap[st.from:st.to]); err != nil {
			return nil, fmt.Errorf("update %s: %w", st.label, err)
		}
		out = append(out, IncrementalResult{
			Label: st.label,
			TPR:   ids.Evaluate(model, env.SQLMap).TPR(),
			FPR:   ids.Evaluate(model, env.BenignTest).FPR(),
		})
	}
	return out, nil
}

// PerdisciResult is Experiment 3's outcome.
type PerdisciResult struct {
	FineGrainedClusters int
	AfterFiltering      int
	FinalSignatures     int
	TPRUnseen           float64 // on the SQLmap set (paper: 5.79%)
	TPRTrain            float64 // on the training set itself (paper: 76.5%)
	FPR                 float64 // on the benign trace (paper: 0%)
}

// Experiment3 reproduces the comparison to Perdisci's approach.
func Experiment3(env *Env) (*PerdisciResult, error) {
	res, err := perdisci.Train(env.TrainAttackReqs, perdisci.Options{})
	if err != nil {
		return nil, err
	}
	return &PerdisciResult{
		FineGrainedClusters: res.FineGrained,
		AfterFiltering:      res.AfterFiltering,
		FinalSignatures:     res.FinalSignatures,
		TPRUnseen:           ids.Evaluate(res.System, env.SQLMap).TPR(),
		TPRTrain:            ids.Evaluate(res.System, env.TrainAttackReqs).TPR(),
		FPR:                 ids.Evaluate(res.System, env.BenignTest).FPR(),
	}, nil
}

// TimingResult is one system's Experiment 4 row.
type TimingResult struct {
	System        string
	Min, Avg, Max time.Duration
}

// Experiment4 reproduces the performance evaluation: per-request processing
// time over the SQLmap set for pSigene, ModSec and Bro, from which the
// paper derives its 17X / 11X slowdown figures.
func Experiment4(env *Env, maxRequests int) []TimingResult {
	reqs := env.SQLMap
	if maxRequests > 0 && len(reqs) > maxRequests {
		reqs = reqs[:maxRequests]
	}
	// The pSigene row times the paper-faithful count_all engine; the
	// shared-pass Model engine is the optimization the paper defers.
	countAll, err := core.NewCountAllDetector(env.Model9)
	if err != nil {
		countAll = nil
	}
	systems := []ids.Detector{env.ModSec, env.Bro}
	if countAll != nil {
		systems = append([]ids.Detector{countAll}, systems...)
	}
	out := make([]TimingResult, 0, len(systems))
	for _, d := range systems {
		tr := TimingResult{System: displayName(d)}
		var total time.Duration
		for i, r := range reqs {
			start := time.Now()
			d.Inspect(r)
			el := time.Since(start)
			total += el
			if i == 0 || el < tr.Min {
				tr.Min = el
			}
			if el > tr.Max {
				tr.Max = el
			}
		}
		if len(reqs) > 0 {
			tr.Avg = total / time.Duration(len(reqs))
		}
		out = append(out, tr)
	}
	return out
}

// Slowdown computes avg-time ratios of pSigene vs the other systems in an
// Experiment4 result (paper: 17X vs ModSec, 11X vs Bro).
func Slowdown(rows []TimingResult) map[string]float64 {
	var ps float64
	for _, r := range rows {
		if strings.HasPrefix(r.System, "pSigene") {
			ps = float64(r.Avg)
		}
	}
	out := make(map[string]float64)
	for _, r := range rows {
		if !strings.HasPrefix(r.System, "pSigene") && r.Avg > 0 {
			out[r.System] = ps / float64(r.Avg)
		}
	}
	return out
}

// ablation helpers -----------------------------------------------------------

// AblationRow compares a pipeline variant against the default.
type AblationRow struct {
	Variant  string
	TPR, FPR float64
}

// AblationBinaryFeatures reruns training with binary (presence) features —
// the design choice §II-B reports as inferior to counts.
func AblationBinaryFeatures(env *Env) (*AblationRow, error) {
	m, err := core.Train(env.TrainAttackReqs, env.TrainBenignReqs, core.Config{BinaryFeatures: true})
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Variant: "binary features",
		TPR:     ids.Evaluate(m, env.SQLMap).TPR(),
		FPR:     ids.Evaluate(m, env.BenignTest).FPR(),
	}, nil
}

// AblationGlobalLR trains a single logistic regression over all features
// with no biclustering — isolating the contribution of phase 3.
func AblationGlobalLR(env *Env) (*AblationRow, error) {
	// A single "bicluster" containing every sample and every feature.
	m, err := core.Train(env.TrainAttackReqs, env.TrainBenignReqs, core.Config{
		Cluster: cluster.Options{MinClusterFrac: 0.999, FeatureSupport: 1e-9, BlackHoleZeroFrac: 1.1},
	})
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Variant: "single global LR (no biclustering)",
		TPR:     ids.Evaluate(m, env.SQLMap).TPR(),
		FPR:     ids.Evaluate(m, env.BenignTest).FPR(),
	}, nil
}

// AblationLinkage retrains the pipeline with single and complete linkage in
// place of the paper's UPGMA, quantifying the clustering design choice.
func AblationLinkage(env *Env) ([]AblationRow, error) {
	var out []AblationRow
	for _, l := range []cluster.Linkage{cluster.LinkageAverage, cluster.LinkageSingle, cluster.LinkageComplete} {
		m, err := core.Train(env.TrainAttackReqs, env.TrainBenignReqs, core.Config{
			Cluster: cluster.Options{Linkage: l},
		})
		if err != nil {
			return nil, fmt.Errorf("linkage %v: %w", l, err)
		}
		out = append(out, AblationRow{
			Variant: "linkage " + l.String() + fmt.Sprintf(" (%d signatures)", len(m.Signatures)),
			TPR:     ids.Evaluate(m, env.SQLMap).TPR(),
			FPR:     ids.Evaluate(m, env.BenignTest).FPR(),
		})
	}
	return out, nil
}

// ThresholdSweep evaluates the 9-signature model across decision
// thresholds (the knob behind Figure 3's per-signature curves).
func ThresholdSweep(env *Env, thresholds []float64) []AblationRow {
	defer env.Model9.SetThreshold(0.5)
	var out []AblationRow
	for _, t := range thresholds {
		env.Model9.SetThreshold(t)
		out = append(out, AblationRow{
			Variant: fmt.Sprintf("threshold=%.2f", t),
			TPR:     ids.Evaluate(env.Model9, env.SQLMap).TPR(),
			FPR:     ids.Evaluate(env.Model9, env.BenignTest).FPR(),
		})
	}
	return out
}
