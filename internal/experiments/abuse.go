package experiments

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"testing"
	"time"

	"psigene/internal/admission"
	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/gateway"
	"psigene/internal/resilience"
	"psigene/internal/traffic"
)

// The abuse benchmark measures what per-client admission control costs
// and what it buys. Costs: the admission check itself under a zipfian
// caller population large enough to churn the bounded LRU, membership
// lookups in a million-entry denylist trie, and the end-to-end gateway
// overhead of running with admission on vs. off over an in-process
// upstream. Buys: a deterministic storm replay reporting how a hot
// caller's traffic is shed while the zipfian crowd rides through
// untouched — the outcome counts are a seeded function, so the committed
// JSON doubles as a regression pin.

// AbuseBenchResult is the machine-readable output of the abuse benchmark
// (BENCH_abuse.json).
type AbuseBenchResult struct {
	Seed int64 `json:"seed"`
	// Callers is the zipfian key-space size for the check benchmarks;
	// MaxCallers is the LRU bound they churn against.
	Callers    int `json:"callers"`
	MaxCallers int `json:"maxCallers"`
	// DenylistEntries and DenylistBuildMillis describe the trie build;
	// the per-lookup cost is in the cases.
	DenylistEntries     int            `json:"denylistEntries"`
	DenylistBuildMillis float64        `json:"denylistBuildMillis"`
	Cases               []FastpathCase `json:"cases"`
	// GatewayOverheadPct is the admission-on vs. admission-off gateway
	// ns/op delta, as a percentage of the admission-off baseline.
	GatewayOverheadPct float64 `json:"gatewayOverheadPct"`
	// Storm is the deterministic zipfian-storm outcome tally.
	Storm AbuseStormOutcome `json:"storm"`
}

// AbuseStormOutcome is the outcome tally of the seeded storm replay.
type AbuseStormOutcome struct {
	Requests       int   `json:"requests"`
	HotAllowed     int   `json:"hotAllowed"`
	HotLimited     int   `json:"hotLimited"`
	HotBoxed       int   `json:"hotBoxed"`
	HotStrikes     int   `json:"hotStrikes"`
	BenignCallers  int   `json:"benignCallers"`
	BenignAllowed  int   `json:"benignAllowed"`
	BenignShed     int   `json:"benignShed"`
	TrackedCallers int64 `json:"trackedCallers"`
	Evictions      int64 `json:"evictions"`
}

// abuseDenylist builds n deterministic v4 prefixes in the /12../28
// range, all with the top address bit clear — the gateway benchmark's
// client addresses live in the other half, so its admission checks walk
// the trie to a genuine miss instead of short-circuiting on a ban.
func abuseDenylist(seed int64, n int) ([]netip.Prefix, error) {
	rng := resilience.NewSplitMix64(uint64(seed))
	out := make([]netip.Prefix, 0, n)
	for len(out) < n {
		v := rng.Next()
		bits := 12 + int(v%17)
		a := netip.AddrFrom4([4]byte{byte(v>>32) &^ 0x80, byte(v >> 40), byte(v >> 48), byte(v >> 56)})
		out = append(out, netip.PrefixFrom(a, bits).Masked())
	}
	return out, nil
}

// AbuseBenchmark measures the admission-control subsystem: keyed checks
// under zipfian churn, million-entry denylist lookups, gateway overhead
// with admission on vs. off, and the deterministic storm outcome.
func AbuseBenchmark(seed int64) (*AbuseBenchResult, error) {
	const (
		callers    = 1 << 20 // zipfian key space: ~a million distinct callers
		maxCallers = 1 << 16
		denyN      = 1_000_000
	)
	res := &AbuseBenchResult{Seed: seed, Callers: callers, MaxCallers: maxCallers, DenylistEntries: denyN}

	record := func(name string, r testing.BenchmarkResult) FastpathCase {
		c := FastpathCase{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.NsPerOp() > 0 {
			c.OpsPerSec = 1e9 / float64(r.NsPerOp())
		}
		res.Cases = append(res.Cases, c)
		return c
	}

	// Keyed admission checks under a zipfian caller population an order
	// of magnitude past the LRU bound. Pre-rendered keys so the benchmark
	// times the check (hash, shard lock, window arithmetic, LRU motion),
	// not fmt. The injected clock advances 100µs per check — a steady
	// 10k rps — so windows genuinely roll over during the run.
	zipf := rand.NewZipf(rand.New(rand.NewSource(seed)), 1.2, 1, callers-1)
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("caller-%d", zipf.Uint64())
	}
	var ns int64
	ctrl := admission.New(admission.Config{
		QPS: 1000, QPM: 30000, QPD: 1_000_000,
		MaxCallers: maxCallers,
		Seed:       seed,
		Now:        func() time.Time { ns += 100_000; return time.Unix(0, ns) },
	})
	record("admission/check/zipfian", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctrl.CheckCaller(admission.Caller{Key: keys[i%len(keys)]})
		}
	}))

	// Million-entry denylist: build once, then time membership lookups
	// over a probe mix of hits and misses.
	prefixes, err := abuseDenylist(seed+1, denyN)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	deny, err := admission.BuildCIDRSet(prefixes)
	if err != nil {
		return nil, fmt.Errorf("denylist build: %w", err)
	}
	res.DenylistBuildMillis = float64(time.Since(start).Nanoseconds()) / 1e6
	probeRng := resilience.NewSplitMix64(uint64(seed) + 2)
	probes := make([]netip.Addr, 1<<12)
	for i := range probes {
		v := probeRng.Next()
		probes[i] = netip.AddrFrom4([4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	}
	record("denylist/contains/1M", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			deny.Contains(probes[i%len(probes)])
		}
	}))

	// Gateway overhead: the same benign mix through the same in-process
	// upstream, with admission off (baseline) and on (generous tiers +
	// the million-entry denylist, so the check always runs end to end
	// but nothing is actually rejected).
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), seed).Requests(1200)
	benign := traffic.NewGenerator(seed + 1).Requests(1500)
	model, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	mix := fastpathMix(seed+10, 950, 50)
	remotes := make([]string, 1024)
	for i := range remotes {
		remotes[i] = fmt.Sprintf("198.%d.%d.%d:1234", i%200, (i*7)%251, (i*13)%253)
	}
	gwBench := func(gw *gateway.Gateway) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req := mix[i%len(mix)]
				target := req.Path
				if target == "" {
					target = "/"
				}
				if req.RawQuery != "" {
					target += "?" + req.RawQuery
				}
				hr := httptest.NewRequest(http.MethodGet, target, nil)
				hr.RemoteAddr = remotes[i%len(remotes)]
				gw.ServeHTTP(httptest.NewRecorder(), hr)
			}
		})
	}
	gwOff, err := gateway.New("http://upstream.invalid", model, gateway.Options{
		Client: &http.Client{Transport: memUpstream{}},
	})
	if err != nil {
		return nil, err
	}
	var gwNs int64
	gwCtrl := admission.New(admission.Config{
		QPS: 1 << 30, MaxCallers: maxCallers, Seed: seed, Denylist: deny,
		Now: func() time.Time { gwNs += 100_000; return time.Unix(0, gwNs) },
	})
	gwOn, err := gateway.New("http://upstream.invalid", model, gateway.Options{
		Client:    &http.Client{Transport: memUpstream{}},
		Admission: gwCtrl,
	})
	if err != nil {
		return nil, err
	}
	// Scoring dominates the gateway op (~20µs) and single benchmark runs
	// wobble by more than the admission delta — the process also speeds up
	// as it warms, so running all of one configuration before the other
	// biases whichever went first. Interleave four off/on rounds and
	// compare the fastest of each: the standard stable estimator for a
	// small difference on a noisy base.
	offBest, onBest := gwBench(gwOff), gwBench(gwOn)
	for i := 0; i < 3; i++ {
		if r := gwBench(gwOff); r.NsPerOp() < offBest.NsPerOp() {
			offBest = r
		}
		if r := gwBench(gwOn); r.NsPerOp() < onBest.NsPerOp() {
			onBest = r
		}
	}
	off := record("gateway/mix/admission=off", offBest)
	on := record("gateway/mix/admission=on", onBest)
	if off.NsPerOp > 0 {
		res.GatewayOverheadPct = 100 * (on.NsPerOp - off.NsPerOp) / off.NsPerOp
	}

	res.Storm = abuseStorm(seed)
	return res, nil
}

// abuseStorm replays the deterministic zipfian storm at the controller
// level (1000 rps aggregate on an injected clock, one hot caller on 3 of
// 4 slots against a 200 qps tier) and tallies the outcomes.
func abuseStorm(seed int64) AbuseStormOutcome {
	var ns int64
	ctrl := admission.New(admission.Config{
		QPS: 200, StrikeThreshold: 3, BlockSeconds: 4, Seed: seed,
		Now: func() time.Time { return time.Unix(0, ns) },
	})
	zipf := rand.NewZipf(rand.New(rand.NewSource(seed+3)), 1.2, 1, 9999)
	out := AbuseStormOutcome{Requests: 8000}
	benignSeen := map[string]bool{}
	for i := 0; i < out.Requests; i++ {
		ns += int64(time.Millisecond)
		var key string
		hot := i%4 != 3
		if hot {
			key = "hot"
		} else {
			key = fmt.Sprintf("benign-%d", zipf.Uint64())
			benignSeen[key] = true
		}
		d := ctrl.CheckCaller(admission.Caller{Key: key})
		switch {
		case hot && d.Verdict == admission.Allow:
			out.HotAllowed++
		case hot && d.Verdict == admission.Limited:
			out.HotLimited++
		case hot && d.Verdict == admission.Boxed:
			out.HotBoxed++
		case !hot && d.Verdict == admission.Allow:
			out.BenignAllowed++
		default:
			out.BenignShed++
		}
		if d.Strikes > out.HotStrikes {
			out.HotStrikes = d.Strikes
		}
	}
	out.BenignCallers = len(benignSeen)
	s := ctrl.Stats()
	out.TrackedCallers = s.TrackedCallers
	out.Evictions = s.Evictions
	return out
}
