package experiments

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"

	"psigene/internal/attackgen"
	"psigene/internal/crawl"
	"psigene/internal/feature"
	"psigene/internal/ids"
	"psigene/internal/portal"
	"psigene/internal/report"
	"psigene/internal/ruleset"
)

// Table1 reproduces Table I plus the §II-A coverage check: portals are
// spun up in-process, crawled, and the known advisory list (the July 2012
// NVD SQLi vulnerabilities) is checked for coverage by the crawled corpus.
func Table1(seed int64) (*report.Table, error) {
	gen := func(s int64) *attackgen.Generator {
		return attackgen.NewGenerator(attackgen.CrawlProfile(), s)
	}
	portals := []*portal.Portal{
		portal.New("securityfocus", portal.StyleHTML, 8, portal.GenerateEntries(gen(seed), 24)),
		portal.New("exploit-db", portal.StyleHTML, 10, portal.GenerateEntries(gen(seed+1), 30)),
		portal.New("packetstorm", portal.StyleHTML, 6, portal.GenerateEntries(gen(seed+2), 18)),
		portal.New("osvdb", portal.StyleAPI, 10, portal.GenerateEntries(gen(seed+3), 25)),
	}
	var urls []string
	var servers []*httptest.Server
	for _, p := range portals {
		srv := httptest.NewServer(p.Handler())
		servers = append(servers, srv)
		urls = append(urls, srv.URL)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	c := crawl.New(crawl.Options{Client: servers[0].Client()})
	samples, results, err := c.CrawlAll(urls)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, r := range results {
		for _, cve := range r.CVEs {
			seen[cve] = true
		}
	}

	tbl := &report.Table{
		Title:   "Table I: SQLi vulnerabilities covered by the crawled corpus",
		Headers: []string{"Vulnerability (CVE ID)", "Covered by crawl"},
	}
	for _, cve := range portal.KnownCVEs() {
		covered := "no"
		if seen[cve] {
			covered = "yes"
		}
		tbl.AddRow(cve, covered)
	}
	tbl.AddRow("(total samples crawled)", fmt.Sprintf("%d from %d portals", len(samples), len(portals)))
	return tbl, nil
}

// Table2 reproduces Table II: the feature-source census with examples.
func Table2() *report.Table {
	set := feature.Catalog()
	counts := set.CountBySource()
	example := map[feature.Source]string{}
	for _, f := range set.Features {
		if _, ok := example[f.Source]; !ok {
			example[f.Source] = f.Name
		}
	}
	tbl := &report.Table{
		Title:   "Table II: sources of SQLi features",
		Headers: []string{"Feature source", "Count", "Example"},
	}
	for _, s := range []feature.Source{feature.SourceReservedWord, feature.SourceSignature, feature.SourceReference} {
		tbl.AddRow(s.String(), fmt.Sprint(counts[s]), example[s])
	}
	tbl.AddRow("Total (candidate set)", fmt.Sprint(set.Len()), "")
	return tbl
}

// Table3 reproduces Table III: the feature set of one generated signature
// (the paper shows signature 6; we show the signature whose post-pruning
// feature count is closest to the paper's six).
func Table3(env *Env) (*report.Table, error) {
	m := env.Model9
	best := m.Signatures[0]
	for _, s := range m.Signatures {
		if abs(len(s.Features)-6) < abs(len(best.Features)-6) {
			best = s
		}
	}
	feats, err := m.SignatureFeatures(best.ID)
	if err != nil {
		return nil, err
	}
	tbl := &report.Table{
		Title:   fmt.Sprintf("Table III: features included in signature %d", best.ID),
		Headers: []string{"Feature number", "Feature (regular expression)"},
	}
	for i, f := range feats {
		tbl.AddRow(fmt.Sprint(best.Features[i]), f.Name)
	}
	theta := best.Model.Theta()
	parts := make([]string, len(theta))
	for i, v := range theta {
		parts[i] = report.F(v, 6)
	}
	tbl.AddRow("(theta)", strings.Join(parts, " "))
	return tbl, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Table4 reproduces Table IV: the ruleset comparison.
func Table4() *report.Table {
	tbl := &report.Table{
		Title:   "Table IV: comparison between different SQLi rulesets",
		Headers: []string{"Rules distribution", "Version", "Number SQLi rules", "SQLi rules enabled", "Usage of regex", "Avg/Max/Min pattern len"},
	}
	for _, rs := range []ruleset.Ruleset{ruleset.Bro(), ruleset.Snort(), ruleset.EmergingThreats(), ruleset.ModSecCRS()} {
		st := rs.Stats()
		tbl.AddRow(st.Name, st.Version, fmt.Sprint(st.SQLiRules),
			report.Pct(st.EnabledFraction, 0), report.Pct(st.RegexFraction, 0),
			fmt.Sprintf("%.1f / %d / %d", st.AvgPatternLength, st.MaxPatternLength, st.MinPatternLength))
	}
	return tbl
}

// AccuracyRow is one Table V row.
type AccuracyRow struct {
	System     string
	TPRSQLMap  float64
	TPRArachni float64
	FPR        float64
}

// Table5 reproduces Table V: TPR on the SQLmap and Arachni sets and FPR on
// the benign trace, for every system.
func Table5(env *Env) ([]AccuracyRow, *report.Table) {
	var rows []AccuracyRow
	for _, d := range env.Detectors() {
		rows = append(rows, AccuracyRow{
			System:     displayName(d),
			TPRSQLMap:  ids.Evaluate(d, env.SQLMap).TPR(),
			TPRArachni: ids.Evaluate(d, env.Arachni).TPR(),
			FPR:        ids.Evaluate(d, env.BenignTest).FPR(),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].TPRSQLMap > rows[j].TPRSQLMap })

	tbl := &report.Table{
		Title:   "Table V: accuracy comparison between different SQLi rulesets",
		Headers: []string{"Rules", "TPR % (SQLmap)", "TPR % (Arachni)", "FPR %"},
	}
	for _, r := range rows {
		tbl.AddRow(r.System, report.Pct(r.TPRSQLMap, 2), report.Pct(r.TPRArachni, 2), report.Pct(r.FPR, 4))
	}
	return rows, tbl
}

func displayName(d ids.Detector) string {
	n := d.Name()
	if strings.HasPrefix(n, "pSigene") {
		return strings.ReplaceAll(n, "(", " (")
	}
	return n
}

// Table6 reproduces Table VI: per-cluster sample counts, biclustering
// feature counts, and post-LR signature feature counts.
func Table6(env *Env) *report.Table {
	tbl := &report.Table{
		Title:   "Table VI: details of signatures for each cluster created by pSigene",
		Headers: []string{"Bicluster", "Number of samples", "Features (biclustering)", "Features (signature)"},
	}
	for _, s := range env.Model9.Signatures {
		tbl.AddRow(fmt.Sprint(s.ID), fmt.Sprintf("%.0f", s.SampleWeight),
			fmt.Sprint(s.BiclusterFeatures), fmt.Sprint(len(s.Features)))
	}
	for _, b := range env.Model9.Biclustering.Biclusters {
		if b.BlackHole {
			tbl.AddRow(fmt.Sprint(b.ID), fmt.Sprintf("%.0f", b.SampleWeight), fmt.Sprint(len(b.Features)), "(black hole)")
		}
	}
	return tbl
}
