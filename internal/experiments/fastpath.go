package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"psigene/internal/attackgen"
	"psigene/internal/core"
	"psigene/internal/feature"
	"psigene/internal/gateway"
	"psigene/internal/httpx"
	"psigene/internal/ids"
	"psigene/internal/traffic"
)

// The fast-path benchmark measures what the staged-detection work
// actually bought on the serving path: single-request Inspect latency
// and allocations with the literal prefilter on vs. off, end-to-end
// gateway throughput over an in-process upstream (no sockets, so the
// numbers isolate gateway+scoring work rather than loopback RTT), and
// the sharded batch evaluator. Every pair is measured on the same
// benign-dominated mix, and on/off verdict parity is re-verified here
// before any timing runs — a benchmark of a wrong fast path is
// worthless.

// FastpathCase is one measured configuration.
type FastpathCase struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	OpsPerSec   float64 `json:"opsPerSec"`
}

// FastpathBenchResult is the machine-readable output of the fast-path
// benchmark (BENCH_fastpath.json).
type FastpathBenchResult struct {
	Seed       int64 `json:"seed"`
	Signatures int   `json:"signatures"`
	// Mix is the benchmark traffic composition.
	MixBenign  int `json:"mixBenign"`
	MixAttacks int `json:"mixAttacks"`
	// Prefilter is the static census of the compiled gate (literal
	// count, gated vs. always-run patterns) plus the evaluation counters
	// accumulated while benchmarking.
	Prefilter feature.PrefilterStats `json:"prefilter"`
	Cases     []FastpathCase         `json:"cases"`
	// InspectSpeedup and GatewaySpeedup are the on/off ns-per-op ratios
	// for the Inspect mix and the gateway mix.
	InspectSpeedup float64 `json:"inspectSpeedup"`
	GatewaySpeedup float64 `json:"gatewaySpeedup"`
	// BenignAllocsPerOp is allocations per Inspect of a benign request
	// with the prefilter on (the steady-state serving number).
	BenignAllocsPerOp int64 `json:"benignAllocsPerOp"`
}

// memUpstream answers every proxied request in-process with an empty
// 200, so gateway benchmarks measure the gateway, not a TCP loopback.
type memUpstream struct{}

func (memUpstream) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.Body != nil {
		if _, err := io.Copy(io.Discard, r.Body); err != nil {
			return nil, err
		}
		if err := r.Body.Close(); err != nil {
			return nil, err
		}
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Status:     "200 OK",
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header:  make(http.Header),
		Body:    http.NoBody,
		Request: r,
	}, nil
}

// fastpathMix builds the benchmark traffic: a benign-dominated gateway
// mix with attacks spread evenly through it, deterministic in seed.
func fastpathMix(seed int64, benign, attacks int) []httpx.Request {
	breqs := traffic.NewGenerator(seed).Requests(benign)
	areqs := attackgen.NewGenerator(attackgen.SQLMapProfile(), seed+1).Requests(attacks)
	total := benign + attacks
	mix := make([]httpx.Request, 0, total)
	ai, bi := 0, 0
	for i := 0; i < total; i++ {
		if ai < attacks && (i+1)*attacks > ai*total {
			mix = append(mix, areqs[ai])
			ai++
			continue
		}
		mix = append(mix, breqs[bi])
		bi++
	}
	return mix
}

// FastpathBenchmark trains one model, verifies prefilter on/off verdict
// parity over the whole mix, and measures the serving fast path.
func FastpathBenchmark(seed int64) (*FastpathBenchResult, error) {
	attacks := attackgen.NewGenerator(attackgen.CrawlProfile(), seed).Requests(1200)
	benign := traffic.NewGenerator(seed + 1).Requests(1500)
	model, err := core.Train(attacks, benign, core.Config{})
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	const mixBenign, mixAttacks = 950, 50
	mix := fastpathMix(seed+10, mixBenign, mixAttacks)
	benignOnly := traffic.NewGenerator(seed + 20).Requests(500)

	// Parity gate: identical verdicts with the prefilter on and off, on
	// every request this benchmark will time. Hard-fail on divergence.
	for _, req := range mix {
		model.SetPrefilter(true)
		on := model.Inspect(req)
		model.SetPrefilter(false)
		off := model.Inspect(req)
		if !reflect.DeepEqual(on, off) {
			return nil, fmt.Errorf("verdict parity violated on %q: prefilter=%+v plain=%+v",
				req.RawQuery, on, off)
		}
	}

	res := &FastpathBenchResult{
		Seed:       seed,
		Signatures: len(model.Signatures),
		MixBenign:  mixBenign,
		MixAttacks: mixAttacks,
	}

	inspectBench := func(reqs []httpx.Request) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			sess := model.NewSession()
			defer sess.Close()
			for i := 0; i < b.N; i++ {
				sess.Inspect(reqs[i%len(reqs)])
			}
		})
	}
	gatewayBench := func(gw *gateway.Gateway) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req := mix[i%len(mix)]
				target := req.Path
				if target == "" {
					target = "/"
				}
				if req.RawQuery != "" {
					target += "?" + req.RawQuery
				}
				method := req.Method
				if method == "" {
					method = http.MethodGet
				}
				var body io.Reader
				if req.Body != "" {
					body = strings.NewReader(req.Body)
				}
				hr := httptest.NewRequest(method, target, body)
				w := httptest.NewRecorder()
				gw.ServeHTTP(w, hr)
			}
		})
	}
	record := func(name string, r testing.BenchmarkResult) FastpathCase {
		c := FastpathCase{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.NsPerOp() > 0 {
			c.OpsPerSec = 1e9 / float64(r.NsPerOp())
		}
		res.Cases = append(res.Cases, c)
		return c
	}

	model.SetPrefilter(true)
	onMix := record("inspect/mix/prefilter=on", inspectBench(mix))
	onBenign := record("inspect/benign/prefilter=on", inspectBench(benignOnly))
	res.BenignAllocsPerOp = onBenign.AllocsPerOp
	model.SetPrefilter(false)
	offMix := record("inspect/mix/prefilter=off", inspectBench(mix))
	record("inspect/benign/prefilter=off", inspectBench(benignOnly))
	if onMix.NsPerOp > 0 {
		res.InspectSpeedup = offMix.NsPerOp / onMix.NsPerOp
	}

	newGateway := func() (*gateway.Gateway, error) {
		return gateway.New("http://upstream.invalid", model, gateway.Options{
			Client: &http.Client{Transport: memUpstream{}},
		})
	}
	model.SetPrefilter(true)
	gwOn, err := newGateway()
	if err != nil {
		return nil, err
	}
	onGw := record("gateway/mix/prefilter=on", gatewayBench(gwOn))
	model.SetPrefilter(false)
	gwOff, err := newGateway()
	if err != nil {
		return nil, err
	}
	offGw := record("gateway/mix/prefilter=off", gatewayBench(gwOff))
	if onGw.NsPerOp > 0 {
		res.GatewaySpeedup = offGw.NsPerOp / onGw.NsPerOp
	}

	model.SetPrefilter(true)
	record("parallel-evaluate/mix/prefilter=on", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ids.ParallelEvaluate(model, mix, 0)
		}
	}))

	res.Prefilter = model.PrefilterStats()
	return res, nil
}
