package sqlmini

import (
	"math"
	"regexp"
	"sort"
	"strings"
)

// Table is one in-memory table: named columns and value rows.
type Table struct {
	Cols []string
	Rows [][]Value
}

// DB is an in-memory database with MySQL-style metadata (version, current
// schema/user, information_schema views) and simulated time for sleep() /
// benchmark() — the time-based channel blind injections use, without
// actually sleeping.
type DB struct {
	Tables map[string]*Table

	// VersionString, SchemaName and UserName are what the information
	// functions report.
	VersionString, SchemaName, UserName string

	// SleepSeconds accumulates simulated delay requested by sleep(),
	// benchmark() and conditional timing payloads during the last Exec.
	SleepSeconds float64
}

// NewDB returns a database with MySQL-ish defaults and no tables.
func NewDB() *DB {
	return &DB{
		Tables:        make(map[string]*Table),
		VersionString: "5.5.29-log",
		SchemaName:    "webapp",
		UserName:      "app@localhost",
	}
}

// Create adds (or replaces) a table.
func (db *DB) Create(name string, cols []string, rows [][]Value) {
	t := &Table{Cols: append([]string(nil), cols...)}
	for _, r := range rows {
		t.Rows = append(t.Rows, append([]Value(nil), r...))
	}
	db.Tables[strings.ToLower(name)] = t
}

// Result is the outcome of executing one statement.
type Result struct {
	// Cols and Rows hold the result set of a SELECT (nil otherwise).
	Cols []string
	Rows [][]Value
	// Affected counts rows changed by INSERT/UPDATE/DELETE.
	Affected int
	// Statements counts how many statements the source contained — above
	// one means a stacked (piggybacked) query executed.
	Statements int
}

// Exec parses and executes the source, which may contain stacked
// statements; the result of the last statement is returned. SleepSeconds
// is reset per call. Returned errors are *SyntaxError (parse) or
// *ExecError (runtime), the two MySQL error classes scanners distinguish.
func (db *DB) Exec(src string) (*Result, error) {
	db.SleepSeconds = 0
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		last, err = db.execStmt(st)
		if err != nil {
			return nil, err
		}
	}
	last.Statements = len(stmts)
	return last, nil
}

func (db *DB) execStmt(st Statement) (*Result, error) {
	switch s := st.(type) {
	case *SelectStmt:
		cols, rows, err := db.execSelect(s)
		if err != nil {
			return nil, err
		}
		return &Result{Cols: cols, Rows: rows}, nil
	case *InsertStmt:
		return db.execInsert(s)
	case *UpdateStmt:
		return db.execUpdate(s)
	case *DeleteStmt:
		return db.execDelete(s)
	case *DropStmt:
		name := strings.ToLower(s.Table)
		if _, ok := db.Tables[name]; !ok {
			return nil, execErrorf("Unknown table '%s'", s.Table)
		}
		delete(db.Tables, name)
		return &Result{}, nil
	default:
		return nil, execErrorf("unsupported statement")
	}
}

// lookupTable resolves a table, including the information_schema views.
func (db *DB) lookupTable(name string) (*Table, error) {
	n := strings.ToLower(name)
	switch n {
	case "information_schema.tables":
		t := &Table{Cols: []string{"table_name", "table_schema"}}
		var names []string
		for k := range db.Tables {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			t.Rows = append(t.Rows, []Value{Str(k), Str(db.SchemaName)})
		}
		return t, nil
	case "information_schema.columns":
		t := &Table{Cols: []string{"table_name", "column_name", "table_schema"}}
		var names []string
		for k := range db.Tables {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			for _, c := range db.Tables[k].Cols {
				t.Rows = append(t.Rows, []Value{Str(k), Str(c), Str(db.SchemaName)})
			}
		}
		return t, nil
	case "information_schema.schemata":
		return &Table{Cols: []string{"schema_name"}, Rows: [][]Value{{Str(db.SchemaName)}, {Str("information_schema")}}}, nil
	case "dual", "":
		return &Table{Rows: [][]Value{nil}}, nil
	}
	if t, ok := db.Tables[n]; ok {
		return t, nil
	}
	return nil, execErrorf("Table '%s.%s' doesn't exist", db.SchemaName, name)
}

// rowEnv binds column names to the current row during evaluation.
type rowEnv struct {
	table *Table
	row   []Value
}

func (db *DB) execSelect(s *SelectStmt) ([]string, [][]Value, error) {
	cols, rows, err := db.execOneSelect(s)
	if err != nil {
		return nil, nil, err
	}
	// UNION chain.
	for u := s.Union; u != nil; u = u.Union {
		ucols, urows, err := db.execOneSelect(u)
		if err != nil {
			return nil, nil, err
		}
		if len(ucols) != len(cols) {
			return nil, nil, execErrorf("The used SELECT statements have a different number of columns")
		}
		rows = append(rows, urows...)
		if !s.UnionAll {
			rows = dedupeRows(rows)
		}
	}
	// ORDER BY of the first select applies to the union result (MySQL
	// semantics for unparenthesized unions are murkier; this is enough for
	// the probing payloads).
	if len(s.OrderBy) > 0 {
		if err := orderRows(rows, cols, s.OrderBy); err != nil {
			return nil, nil, err
		}
	}
	if s.Limit != nil {
		lo := s.Limit.Offset
		if lo > len(rows) {
			lo = len(rows)
		}
		hi := lo + s.Limit.Count
		if hi > len(rows) {
			hi = len(rows)
		}
		rows = rows[lo:hi]
	}
	return cols, rows, nil
}

func (db *DB) execOneSelect(s *SelectStmt) ([]string, [][]Value, error) {
	table, err := db.lookupTable(s.Table)
	if err != nil {
		return nil, nil, err
	}

	// Aggregate COUNT(*) / COUNT(x) queries evaluate over the filtered set.
	if !s.Star && len(s.Fields) == 1 {
		if c, ok := s.Fields[0].(*Call); ok && c.Name == "count" {
			n := 0
			for _, row := range table.Rows {
				match, err := db.rowMatches(s.Where, &rowEnv{table: table, row: row})
				if err != nil {
					return nil, nil, err
				}
				if match {
					n++
				}
			}
			return []string{"count(*)"}, [][]Value{{Number(float64(n))}}, nil
		}
	}

	var outCols []string
	if s.Star {
		outCols = append(outCols, table.Cols...)
		if len(outCols) == 0 {
			outCols = []string{"*"}
		}
	} else {
		for _, f := range s.Fields {
			outCols = append(outCols, exprLabel(f))
		}
	}

	var out [][]Value
	for _, row := range table.Rows {
		env := &rowEnv{table: table, row: row}
		match, err := db.rowMatches(s.Where, env)
		if err != nil {
			return nil, nil, err
		}
		if !match {
			continue
		}
		if s.Star {
			out = append(out, append([]Value(nil), row...))
			continue
		}
		vals := make([]Value, len(s.Fields))
		for i, f := range s.Fields {
			v, err := db.eval(f, env)
			if err != nil {
				return nil, nil, err
			}
			vals[i] = v
		}
		out = append(out, vals)
	}
	return outCols, out, nil
}

func (db *DB) rowMatches(where Expr, env *rowEnv) (bool, error) {
	if where == nil {
		return true, nil
	}
	v, err := db.eval(where, env)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

func (db *DB) execInsert(s *InsertStmt) (*Result, error) {
	t, err := db.lookupTable(s.Table)
	if err != nil {
		return nil, err
	}
	cols := s.Cols
	if len(cols) == 0 {
		cols = t.Cols
	}
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		idx := columnIndex(t, c)
		if idx < 0 {
			return nil, execErrorf("Unknown column '%s' in 'field list'", c)
		}
		colIdx[i] = idx
	}
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(cols) {
			return nil, execErrorf("Column count doesn't match value count at row %d", n+1)
		}
		row := make([]Value, len(t.Cols))
		for i := range row {
			row[i] = Null()
		}
		for i, e := range exprRow {
			v, err := db.eval(e, &rowEnv{table: t})
			if err != nil {
				return nil, err
			}
			row[colIdx[i]] = v
		}
		t.Rows = append(t.Rows, row)
		n++
	}
	return &Result{Affected: n}, nil
}

func (db *DB) execUpdate(s *UpdateStmt) (*Result, error) {
	t, err := db.lookupTable(s.Table)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, row := range t.Rows {
		env := &rowEnv{table: t, row: row}
		match, err := db.rowMatches(s.Where, env)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		for _, a := range s.Set {
			idx := columnIndex(t, a.Col)
			if idx < 0 {
				return nil, execErrorf("Unknown column '%s' in 'field list'", a.Col)
			}
			v, err := db.eval(a.Expr, env)
			if err != nil {
				return nil, err
			}
			row[idx] = v
		}
		n++
	}
	return &Result{Affected: n}, nil
}

func (db *DB) execDelete(s *DeleteStmt) (*Result, error) {
	t, err := db.lookupTable(s.Table)
	if err != nil {
		return nil, err
	}
	var kept [][]Value
	n := 0
	for _, row := range t.Rows {
		match, err := db.rowMatches(s.Where, &rowEnv{table: t, row: row})
		if err != nil {
			return nil, err
		}
		if match {
			n++
			continue
		}
		kept = append(kept, row)
	}
	t.Rows = kept
	return &Result{Affected: n}, nil
}

func columnIndex(t *Table, name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

func exprLabel(e Expr) string {
	switch x := e.(type) {
	case *ColumnRef:
		return strings.ToLower(x.Name)
	case *Call:
		return x.Name + "(...)"
	case *Literal:
		return x.Val.AsString()
	default:
		return "expr"
	}
}

func dedupeRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	var out [][]Value
	for _, r := range rows {
		var key strings.Builder
		for _, v := range r {
			key.WriteString(v.AsString())
			key.WriteByte('\x00')
		}
		if seen[key.String()] {
			continue
		}
		seen[key.String()] = true
		out = append(out, r)
	}
	return out
}

// orderRows sorts in place; numeric ORDER BY keys are 1-based column
// positions (the probing form); out-of-range positions are the error UNION
// column probing relies on.
func orderRows(rows [][]Value, cols []string, keys []OrderKey) error {
	type keySpec struct {
		idx  int
		desc bool
	}
	var specs []keySpec
	for _, k := range keys {
		switch e := k.Expr.(type) {
		case *Literal:
			pos := int(e.Val.AsNumber())
			if pos < 1 || pos > len(cols) {
				return execErrorf("Unknown column '%d' in 'order clause'", pos)
			}
			specs = append(specs, keySpec{idx: pos - 1, desc: k.Desc})
		case *ColumnRef:
			idx := -1
			for i, c := range cols {
				if strings.EqualFold(c, e.Name) {
					idx = i
				}
			}
			if idx < 0 {
				return execErrorf("Unknown column '%s' in 'order clause'", e.Name)
			}
			specs = append(specs, keySpec{idx: idx, desc: k.Desc})
		default:
			// Expression keys are evaluated per row only against literals;
			// treat as no-op, which is enough for attack traffic.
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, sp := range specs {
			c, ok := Compare(rows[i][sp.idx], rows[j][sp.idx])
			if !ok || c == 0 {
				continue
			}
			if sp.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// --- expression evaluation ----------------------------------------------------

func (db *DB) eval(e Expr, env *rowEnv) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		if env.table != nil && env.row != nil {
			if idx := columnIndex(env.table, x.Name); idx >= 0 {
				return env.row[idx], nil
			}
		}
		return Value{}, execErrorf("Unknown column '%s' in 'where clause'", x.Name)
	case *SysVar:
		switch x.Name {
		case "version":
			return Str(db.VersionString), nil
		case "datadir":
			return Str("/var/lib/mysql/"), nil
		case "hostname":
			return Str("db01"), nil
		case "basedir":
			return Str("/usr/"), nil
		default:
			return Null(), nil
		}
	case *Unary:
		v, err := db.eval(x.X, env)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "not":
			if v.IsNull() {
				return Null(), nil
			}
			return Bool(!v.Truthy()), nil
		case "-":
			return Number(-v.AsNumber()), nil
		case "~":
			return Number(float64(^int64(v.AsNumber()))), nil
		}
		return Value{}, execErrorf("bad unary %s", x.Op)
	case *Binary:
		return db.evalBinary(x, env)
	case *Between:
		v, err := db.eval(x.X, env)
		if err != nil {
			return Value{}, err
		}
		lo, err := db.eval(x.Lo, env)
		if err != nil {
			return Value{}, err
		}
		hi, err := db.eval(x.Hi, env)
		if err != nil {
			return Value{}, err
		}
		c1, ok1 := Compare(v, lo)
		c2, ok2 := Compare(v, hi)
		if !ok1 || !ok2 {
			return Null(), nil
		}
		in := c1 >= 0 && c2 <= 0
		if x.Not {
			in = !in
		}
		return Bool(in), nil
	case *InList:
		v, err := db.eval(x.X, env)
		if err != nil {
			return Value{}, err
		}
		var candidates []Value
		if x.Sub != nil {
			_, rows, err := db.execSelect(x.Sub)
			if err != nil {
				return Value{}, err
			}
			for _, r := range rows {
				if len(r) > 0 {
					candidates = append(candidates, r[0])
				}
			}
		} else {
			for _, le := range x.List {
				lv, err := db.eval(le, env)
				if err != nil {
					return Value{}, err
				}
				candidates = append(candidates, lv)
			}
		}
		found := false
		for _, c := range candidates {
			if cmp, ok := Compare(v, c); ok && cmp == 0 {
				found = true
				break
			}
		}
		if x.Not {
			found = !found
		}
		return Bool(found), nil
	case *IsNull:
		v, err := db.eval(x.X, env)
		if err != nil {
			return Value{}, err
		}
		r := v.IsNull()
		if x.Not {
			r = !r
		}
		return Bool(r), nil
	case *Call:
		return db.evalCall(x, env)
	case *Subquery:
		_, rows, err := db.execSelect(x.Sel)
		if err != nil {
			return Value{}, err
		}
		if len(rows) == 0 {
			return Null(), nil
		}
		if len(rows) > 1 {
			return Value{}, execErrorf("Subquery returns more than 1 row")
		}
		if len(rows[0]) != 1 {
			return Value{}, execErrorf("Operand should contain 1 column(s)")
		}
		return rows[0][0], nil
	case *ExistsExpr:
		_, rows, err := db.execSelect(x.Sel)
		if err != nil {
			return Value{}, err
		}
		return Bool(len(rows) > 0), nil
	case *CaseExpr:
		for _, w := range x.Whens {
			c, err := db.eval(w.Cond, env)
			if err != nil {
				return Value{}, err
			}
			if c.Truthy() {
				return db.eval(w.Result, env)
			}
		}
		if x.Else != nil {
			return db.eval(x.Else, env)
		}
		return Null(), nil
	}
	return Value{}, execErrorf("unsupported expression")
}

func (db *DB) evalBinary(x *Binary, env *rowEnv) (Value, error) {
	l, err := db.eval(x.L, env)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit AND/OR before evaluating the right side, matching
	// MySQL and keeping conditional sleep payloads accurate.
	switch x.Op {
	case "and":
		if !l.IsNull() && !l.Truthy() {
			return Bool(false), nil
		}
	case "or":
		if l.Truthy() {
			return Bool(true), nil
		}
	}
	r, err := db.eval(x.R, env)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "and":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(l.Truthy() && r.Truthy()), nil
	case "or":
		if l.IsNull() && !r.Truthy() || r.IsNull() && !l.Truthy() {
			return Null(), nil
		}
		return Bool(l.Truthy() || r.Truthy()), nil
	case "xor":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(l.Truthy() != r.Truthy()), nil
	case "=", "!=", "<", ">", "<=", ">=":
		c, ok := Compare(l, r)
		if !ok {
			return Null(), nil
		}
		switch x.Op {
		case "=":
			return Bool(c == 0), nil
		case "!=":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case ">":
			return Bool(c > 0), nil
		case "<=":
			return Bool(c <= 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "<=>":
		return Bool(NullSafeEqual(l, r)), nil
	case "like", "not like":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		m := likeMatch(l.AsString(), r.AsString())
		if x.Op == "not like" {
			m = !m
		}
		return Bool(m), nil
	case "regexp", "not regexp":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		re, err := regexp.Compile("(?i)" + r.AsString())
		if err != nil {
			return Value{}, execErrorf("Got error 'repetition-operator operand invalid' from regexp")
		}
		m := re.MatchString(l.AsString())
		if x.Op == "not regexp" {
			m = !m
		}
		return Bool(m), nil
	case "+":
		return Number(l.AsNumber() + r.AsNumber()), nil
	case "-":
		return Number(l.AsNumber() - r.AsNumber()), nil
	case "*":
		return Number(l.AsNumber() * r.AsNumber()), nil
	case "/":
		if r.AsNumber() == 0 {
			return Null(), nil // MySQL: division by zero yields NULL
		}
		return Number(l.AsNumber() / r.AsNumber()), nil
	case "div":
		if r.AsNumber() == 0 {
			return Null(), nil
		}
		return Number(math.Trunc(l.AsNumber() / r.AsNumber())), nil
	case "%":
		if r.AsNumber() == 0 {
			return Null(), nil
		}
		return Number(math.Mod(l.AsNumber(), r.AsNumber())), nil
	case "|":
		return Number(float64(int64(l.AsNumber()) | int64(r.AsNumber()))), nil
	case "&":
		return Number(float64(int64(l.AsNumber()) & int64(r.AsNumber()))), nil
	case "^":
		return Number(float64(int64(l.AsNumber()) ^ int64(r.AsNumber()))), nil
	}
	return Value{}, execErrorf("bad operator %s", x.Op)
}
