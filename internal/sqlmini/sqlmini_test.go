package sqlmini

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// testDB builds the canonical vulnerable-app schema.
func testDB() *DB {
	db := NewDB()
	db.Create("users", []string{"id", "name", "password"}, [][]Value{
		{Number(1), Str("alice"), Str("s3cret")},
		{Number(2), Str("bob"), Str("hunter2")},
		{Number(3), Str("admin"), Str("root!pw")},
	})
	db.Create("products", []string{"id", "title", "price"}, [][]Value{
		{Number(1), Str("widget"), Number(9.99)},
		{Number(2), Str("gadget"), Number(19.99)},
	})
	return db
}

func mustExec(t *testing.T, db *DB, q string) *Result {
	t.Helper()
	r, err := db.Exec(q)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return r
}

func TestSelectBasics(t *testing.T) {
	db := testDB()
	r := mustExec(t, db, "SELECT * FROM users WHERE id = 2")
	if len(r.Rows) != 1 || r.Rows[0][1].AsString() != "bob" {
		t.Fatalf("rows=%v", r)
	}
	r = mustExec(t, db, "SELECT name FROM users WHERE id = 99")
	if len(r.Rows) != 0 {
		t.Fatalf("expected empty result, got %v", r)
	}
	r = mustExec(t, db, "SELECT name, password FROM users WHERE name = 'alice'")
	if len(r.Rows) != 1 || r.Rows[0][1].AsString() != "s3cret" {
		t.Fatalf("rows=%v", r)
	}
}

func TestSelectNoTable(t *testing.T) {
	db := testDB()
	r := mustExec(t, db, "SELECT 1+1")
	if r.Rows[0][0].AsNumber() != 2 {
		t.Fatalf("1+1=%v", r.Rows[0][0])
	}
	r = mustExec(t, db, "SELECT version()")
	if r.Rows[0][0].AsString() != "5.5.29-log" {
		t.Fatalf("version=%v", r.Rows[0][0])
	}
	r = mustExec(t, db, "SELECT 2 FROM dual")
	if len(r.Rows) != 1 {
		t.Fatalf("dual rows=%d", len(r.Rows))
	}
}

func TestTautologyInjectionReturnsAllRows(t *testing.T) {
	db := testDB()
	// The classic: WHERE name = '' or '1'='1'.
	r := mustExec(t, db, "SELECT * FROM users WHERE name = '' or '1'='1'")
	if len(r.Rows) != 3 {
		t.Fatalf("tautology returned %d rows, want all 3", len(r.Rows))
	}
	// Numeric tautology with coercion: id = 0 or 1=1.
	r = mustExec(t, db, "SELECT * FROM users WHERE id = 0 or 1=1")
	if len(r.Rows) != 3 {
		t.Fatalf("numeric tautology returned %d rows", len(r.Rows))
	}
}

func TestMySQLCoercions(t *testing.T) {
	db := testDB()
	cases := []struct {
		cond string
		want int // matching rows of users (3 total)
	}{
		{"'1' = 1", 3},    // string/number compare numerically
		{"'abc' = 0", 3},  // non-numeric string coerces to 0
		{"'2abc' = 2", 3}, // numeric prefix
		{"'a' = 'A'", 3},  // case-insensitive string compare
		{"1 = 2", 0},
		{"null = null", 0}, // NULL comparisons are never true
		{"null <=> null", 3},
		{"1 <=> 1", 3},
	}
	for _, c := range cases {
		r := mustExec(t, db, "SELECT id FROM users WHERE "+c.cond)
		if len(r.Rows) != c.want {
			t.Fatalf("WHERE %s matched %d rows, want %d", c.cond, len(r.Rows), c.want)
		}
	}
}

func TestUnionInjection(t *testing.T) {
	db := testDB()
	// Break out of a product lookup to read credentials.
	r := mustExec(t, db, "SELECT title, price FROM products WHERE id = -1 UNION SELECT name, password FROM users")
	if len(r.Rows) != 3 {
		t.Fatalf("union returned %d rows, want 3", len(r.Rows))
	}
	if r.Rows[2][0].AsString() != "admin" || r.Rows[2][1].AsString() != "root!pw" {
		t.Fatalf("union leak wrong: %v", r)
	}
	// Column-count mismatch is the error UNION probing relies on.
	_, err := db.Exec("SELECT title FROM products WHERE id = -1 UNION SELECT name, password FROM users")
	var ee *ExecError
	if !errors.As(err, &ee) || !strings.Contains(ee.Msg, "different number of columns") {
		t.Fatalf("column mismatch error: %v", err)
	}
}

func TestOrderByColumnProbing(t *testing.T) {
	db := testDB()
	if _, err := db.Exec("SELECT * FROM users ORDER BY 3"); err != nil {
		t.Fatalf("ORDER BY 3 on 3-column table: %v", err)
	}
	_, err := db.Exec("SELECT * FROM users ORDER BY 4")
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("ORDER BY 4 should fail with unknown column: %v", err)
	}
	// Ordering actually sorts.
	r := mustExec(t, db, "SELECT * FROM users ORDER BY 1 DESC")
	if r.Rows[0][0].AsNumber() != 3 {
		t.Fatalf("DESC order wrong: %v", r.Rows)
	}
}

func TestCommentsTerminateStatement(t *testing.T) {
	db := testDB()
	for _, q := range []string{
		"SELECT * FROM users WHERE name = 'x' or 1=1 -- ' AND password = 'zzz'",
		"SELECT * FROM users WHERE name = 'x' or 1=1 # ' AND password = 'zzz'",
	} {
		r := mustExec(t, db, q)
		if len(r.Rows) != 3 {
			t.Fatalf("%q returned %d rows", q, len(r.Rows))
		}
	}
	// Inline comment splits keywords but stays valid SQL.
	r := mustExec(t, db, "SELECT/**/*/**/FROM/**/users")
	if len(r.Rows) != 3 {
		t.Fatalf("inline comments broke the query: %d rows", len(r.Rows))
	}
	// MySQL executable version comment.
	r = mustExec(t, db, "SELECT * FROM users WHERE id = 1 /*!50000 or 1=1 */")
	if len(r.Rows) != 3 {
		t.Fatalf("version comment not executed: %d rows", len(r.Rows))
	}
}

func TestSyntaxErrors(t *testing.T) {
	db := testDB()
	for _, q := range []string{
		"SELECT * FROM users WHERE name = 'o'brien'", // unbalanced quote mid-value
		"SELECT * FROM users WHERE",
		"SELECT FROM users",
		"zzz",
		"SELECT * FROM users WHERE id = ",
		"SELECT * FROM users WHERE /* unterminated",
	} {
		_, err := db.Exec(q)
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Fatalf("%q: want SyntaxError, got %v", q, err)
		}
		if !strings.Contains(se.Error(), "You have an error in your SQL syntax") {
			t.Fatalf("error text: %v", se)
		}
	}
}

func TestStackedStatements(t *testing.T) {
	db := testDB()
	r := mustExec(t, db, "SELECT 1; DROP TABLE products; SELECT count(*) FROM users")
	if r.Rows[0][0].AsNumber() != 3 {
		t.Fatalf("last statement result: %v", r)
	}
	if _, ok := db.Tables["products"]; ok {
		t.Fatal("products should be dropped")
	}
}

func TestInsertUpdateDelete(t *testing.T) {
	db := testDB()
	r := mustExec(t, db, "INSERT INTO users (id, name, password) VALUES (4, 'eve', 'x'), (5, 'mallory', 'y')")
	if r.Affected != 2 {
		t.Fatalf("insert affected=%d", r.Affected)
	}
	r = mustExec(t, db, "UPDATE users SET password = 'pwned' WHERE name = 'admin'")
	if r.Affected != 1 {
		t.Fatalf("update affected=%d", r.Affected)
	}
	got := mustExec(t, db, "SELECT password FROM users WHERE name = 'admin'")
	if got.Rows[0][0].AsString() != "pwned" {
		t.Fatalf("update did not apply: %v", got)
	}
	r = mustExec(t, db, "DELETE FROM users WHERE id > 3")
	if r.Affected != 2 {
		t.Fatalf("delete affected=%d", r.Affected)
	}
}

func TestInsertErrors(t *testing.T) {
	db := testDB()
	if _, err := db.Exec("INSERT INTO users (id) VALUES (1, 2)"); err == nil {
		t.Fatal("column count mismatch: want error")
	}
	if _, err := db.Exec("INSERT INTO users (nope) VALUES (1)"); err == nil {
		t.Fatal("unknown column: want error")
	}
	if _, err := db.Exec("INSERT INTO missing (id) VALUES (1)"); err == nil {
		t.Fatal("unknown table: want error")
	}
}

func TestInformationSchema(t *testing.T) {
	db := testDB()
	r := mustExec(t, db, "SELECT table_name FROM information_schema.tables")
	if len(r.Rows) != 2 {
		t.Fatalf("tables=%v", r)
	}
	r = mustExec(t, db, "SELECT column_name FROM information_schema.columns WHERE table_name = 'users'")
	if len(r.Rows) != 3 {
		t.Fatalf("columns=%v", r)
	}
	r = mustExec(t, db, "SELECT table_name FROM information_schema.tables LIMIT 1,1")
	if len(r.Rows) != 1 {
		t.Fatalf("limit offset: %v", r)
	}
}

func TestInformationFunctions(t *testing.T) {
	db := testDB()
	r := mustExec(t, db, "SELECT concat(database(), char(58), user(), char(58), version())")
	want := "webapp:app@localhost:5.5.29-log"
	if got := r.Rows[0][0].AsString(); got != want {
		t.Fatalf("concat=%q, want %q", got, want)
	}
	r = mustExec(t, db, "SELECT @@version, @@datadir")
	if r.Rows[0][0].AsString() != "5.5.29-log" {
		t.Fatalf("@@version=%v", r.Rows[0][0])
	}
}

func TestTimeBlindSimulatedSleep(t *testing.T) {
	db := testDB()
	mustExec(t, db, "SELECT * FROM users WHERE id = 1 AND sleep(5)")
	if db.SleepSeconds != 5 {
		t.Fatalf("sleep recorded %v seconds, want 5", db.SleepSeconds)
	}
	// Conditional sleep fires only when the condition holds.
	mustExec(t, db, "SELECT * FROM users WHERE id = 1 AND if(1=2, sleep(9), 0)")
	if db.SleepSeconds != 0 {
		t.Fatalf("false branch slept %v", db.SleepSeconds)
	}
	mustExec(t, db, "SELECT * FROM users WHERE id = 1 AND if(ascii(substr(version(),1,1))=53, sleep(3), 0)")
	if db.SleepSeconds != 3 {
		t.Fatalf("true branch slept %v, want 3 ('5' is ascii 53)", db.SleepSeconds)
	}
	// benchmark() accumulates simulated time.
	mustExec(t, db, "SELECT benchmark(4000000, md5('x'))")
	if db.SleepSeconds <= 0 {
		t.Fatal("benchmark recorded no simulated time")
	}
}

func TestShortCircuitKeepsSleepAccurate(t *testing.T) {
	db := testDB()
	mustExec(t, db, "SELECT 1 WHERE 0 AND sleep(9)")
	if db.SleepSeconds != 0 {
		t.Fatalf("AND short-circuit failed: slept %v", db.SleepSeconds)
	}
	mustExec(t, db, "SELECT 1 WHERE 1 OR sleep(9)")
	if db.SleepSeconds != 0 {
		t.Fatalf("OR short-circuit failed: slept %v", db.SleepSeconds)
	}
}

func TestErrorBasedExtraction(t *testing.T) {
	db := testDB()
	_, err := db.Exec("SELECT extractvalue(1, concat(0x7e, (SELECT password FROM users WHERE name='admin')))")
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("extractvalue should error: %v", err)
	}
	if !strings.Contains(ee.Msg, "root!pw") {
		t.Fatalf("the XPATH error must leak the subquery result: %q", ee.Msg)
	}
	_, err = db.Exec("SELECT updatexml(1, concat(0x7e, version(), 0x7e), 1)")
	if !errors.As(err, &ee) || !strings.Contains(ee.Msg, "5.5.29") {
		t.Fatalf("updatexml leak: %v", err)
	}
}

func TestBooleanBlindInference(t *testing.T) {
	db := testDB()
	// TRUE probe: first character of admin password is 'r' (114).
	r := mustExec(t, db, "SELECT * FROM users WHERE id = 3 AND ascii(substr((SELECT password FROM users WHERE name='admin'),1,1)) = 114")
	if len(r.Rows) != 1 {
		t.Fatalf("true probe returned %d rows", len(r.Rows))
	}
	// FALSE probe.
	r = mustExec(t, db, "SELECT * FROM users WHERE id = 3 AND ascii(substr((SELECT password FROM users WHERE name='admin'),1,1)) = 115")
	if len(r.Rows) != 0 {
		t.Fatalf("false probe returned %d rows", len(r.Rows))
	}
}

func TestSubqueries(t *testing.T) {
	db := testDB()
	r := mustExec(t, db, "SELECT * FROM users WHERE id = (SELECT id FROM users WHERE name = 'bob')")
	if len(r.Rows) != 1 || r.Rows[0][1].AsString() != "bob" {
		t.Fatalf("scalar subquery: %v", r)
	}
	r = mustExec(t, db, "SELECT * FROM users WHERE id IN (SELECT id FROM products)")
	if len(r.Rows) != 2 {
		t.Fatalf("IN subquery: %d rows", len(r.Rows))
	}
	r = mustExec(t, db, "SELECT * FROM users WHERE EXISTS (SELECT * FROM products WHERE price > 15)")
	if len(r.Rows) != 3 {
		t.Fatalf("EXISTS: %d rows", len(r.Rows))
	}
	if _, err := db.Exec("SELECT * FROM users WHERE id = (SELECT id FROM users)"); err == nil {
		t.Fatal("multi-row scalar subquery: want error")
	}
}

func TestHexLiterals(t *testing.T) {
	db := testDB()
	r := mustExec(t, db, "SELECT 0x414243")
	if r.Rows[0][0].AsString() != "ABC" {
		t.Fatalf("hex literal=%v", r.Rows[0][0])
	}
	r = mustExec(t, db, "SELECT * FROM users WHERE name = 0x616c696365")
	if len(r.Rows) != 1 {
		t.Fatalf("hex string compare: %d rows", len(r.Rows))
	}
}

func TestLikeBetweenCase(t *testing.T) {
	db := testDB()
	r := mustExec(t, db, "SELECT * FROM users WHERE name LIKE 'a%'")
	if len(r.Rows) != 2 { // alice, admin
		t.Fatalf("LIKE: %d rows", len(r.Rows))
	}
	r = mustExec(t, db, "SELECT * FROM users WHERE name LIKE '_ob'")
	if len(r.Rows) != 1 {
		t.Fatalf("LIKE underscore: %d rows", len(r.Rows))
	}
	r = mustExec(t, db, "SELECT * FROM users WHERE id BETWEEN 2 AND 3")
	if len(r.Rows) != 2 {
		t.Fatalf("BETWEEN: %d rows", len(r.Rows))
	}
	r = mustExec(t, db, "SELECT CASE WHEN 1=1 THEN 'yes' ELSE 'no' END")
	if r.Rows[0][0].AsString() != "yes" {
		t.Fatalf("CASE: %v", r.Rows[0][0])
	}
	r = mustExec(t, db, "SELECT * FROM users WHERE name REGEXP '^a'")
	if len(r.Rows) != 2 {
		t.Fatalf("REGEXP: %d rows", len(r.Rows))
	}
}

func TestCountAggregate(t *testing.T) {
	db := testDB()
	r := mustExec(t, db, "SELECT count(*) FROM users")
	if r.Rows[0][0].AsNumber() != 3 {
		t.Fatalf("count(*)=%v", r.Rows[0][0])
	}
	r = mustExec(t, db, "SELECT count(*) FROM users WHERE id > 1")
	if r.Rows[0][0].AsNumber() != 2 {
		t.Fatalf("filtered count=%v", r.Rows[0][0])
	}
}

func TestStringFunctions(t *testing.T) {
	db := testDB()
	cases := []struct{ q, want string }{
		{"SELECT substring('abcdef', 2, 3)", "bcd"},
		{"SELECT mid('abcdef', 2, 3)", "bcd"},
		{"SELECT left('abcdef', 2)", "ab"},
		{"SELECT right('abcdef', 2)", "ef"},
		{"SELECT upper('abc')", "ABC"},
		{"SELECT lower('ABC')", "abc"},
		{"SELECT hex('AB')", "4142"},
		{"SELECT unhex('4142')", "AB"},
		{"SELECT concat_ws(':', 'a', 'b')", "a:b"},
		{"SELECT length('abcd')", "4"},
		{"SELECT ascii('A')", "65"},
		{"SELECT char(65, 66)", "AB"},
		{"SELECT if(2>1, 'big', 'small')", "big"},
		{"SELECT ifnull(null, 'dflt')", "dflt"},
		{"SELECT coalesce(null, null, 'x')", "x"},
		{"SELECT greatest(3, 9, 5)", "9"},
		{"SELECT least(3, 9, 5)", "3"},
		{"SELECT floor(2.9)", "2"},
		{"SELECT strcmp('a','b')", "-1"},
	}
	for _, c := range cases {
		r := mustExec(t, db, c.q)
		if got := r.Rows[0][0].AsString(); got != c.want {
			t.Fatalf("%s = %q, want %q", c.q, got, c.want)
		}
	}
}

func TestArithmeticAndNullSemantics(t *testing.T) {
	db := testDB()
	cases := []struct{ q, want string }{
		{"SELECT 7 % 3", "1"},
		{"SELECT 7 DIV 2", "3"},
		{"SELECT 1/0", "NULL"},
		{"SELECT 5 | 2", "7"},
		{"SELECT 5 & 3", "1"},
		{"SELECT 5 ^ 1", "4"},
		{"SELECT -(-3)", "3"},
		{"SELECT NOT 0", "1"},
		{"SELECT 1 XOR 0", "1"},
		{"SELECT 1 XOR 1", "0"},
		{"SELECT null + 1", "1"}, // NULL coerces to 0 in arithmetic here
	}
	for _, c := range cases {
		r := mustExec(t, db, c.q)
		if got := r.Rows[0][0].AsString(); got != c.want {
			t.Fatalf("%s = %q, want %q", c.q, got, c.want)
		}
	}
}

func TestUnknownFunctionAndColumn(t *testing.T) {
	db := testDB()
	if _, err := db.Exec("SELECT nosuchfunc(1)"); err == nil {
		t.Fatal("unknown function: want error")
	}
	if _, err := db.Exec("SELECT nope FROM users"); err == nil {
		t.Fatal("unknown column: want error")
	}
	if _, err := db.Exec("DROP TABLE nosuch"); err == nil {
		t.Fatal("drop unknown table: want error")
	}
}

func TestLoadFileDenied(t *testing.T) {
	db := testDB()
	r := mustExec(t, db, "SELECT load_file('/etc/passwd')")
	if !r.Rows[0][0].IsNull() {
		t.Fatal("load_file must be denied (NULL)")
	}
}

// Property: Exec never panics on arbitrary input — every byte sequence
// yields either a result or a typed error. This is the fuzz-shaped
// guarantee the webapp depends on.
func TestExecNeverPanics(t *testing.T) {
	db := testDB()
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				t.Logf("panic on input %q", s)
				ok = false
			}
		}()
		_, err := db.Exec("SELECT * FROM users WHERE name = '" + s + "'")
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// And on fully attacker-controlled statements.
	for _, s := range []string{
		"", ";;;", "((((", "'''", "\\", "SELECT", "SELECT (", "0x", "@@", "`",
		"SELECT * FROM users WHERE id = 1 UNION", "INSERT INTO", "CASE",
	} {
		if _, err := db.Exec(s); err == nil && s != "" {
			// Errors expected for malformed input; just must not panic.
			_ = err
		}
	}
}
