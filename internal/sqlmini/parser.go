package sqlmini

import (
	"strconv"
	"strings"
)

// Parse parses one or more semicolon-separated statements (stacked queries
// are how piggybacked injections work, so the parser must accept them).
func Parse(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	var out []Statement
	for {
		// Skip statement separators.
		for p.peekOp(";") {
			p.i++
		}
		if p.peek().kind == tokEOF {
			break
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.peekOp(";") && p.peek().kind != tokEOF {
			return nil, p.errHere()
		}
	}
	if len(out) == 0 {
		return nil, &SyntaxError{Near: "", Pos: 0}
	}
	return out, nil
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errHere() *SyntaxError {
	t := p.peek()
	near := ""
	if t.pos < len(p.src) {
		near = p.src[t.pos:]
		if len(near) > 40 {
			near = near[:40]
		}
	}
	return &SyntaxError{Near: near, Pos: t.pos}
}

// peekKeyword reports whether the next token is the given keyword
// (case-insensitive identifier match).
func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errHere()
	}
	return nil
}

func (p *parser) peekOp(op string) bool {
	t := p.peek()
	return t.kind == tokOp && t.text == op
}

func (p *parser) acceptOp(op string) bool {
	if p.peekOp(op) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errHere()
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent || reservedWord(t.text) {
		return "", p.errHere()
	}
	p.i++
	return t.text, nil
}

// reservedWord guards identifier positions against keywords so that
// "select from where" fails like MySQL would.
func reservedWord(s string) bool {
	switch strings.ToLower(s) {
	case "select", "from", "where", "and", "or", "not", "union", "all",
		"insert", "into", "values", "update", "set", "delete", "drop",
		"table", "order", "by", "limit", "like", "between", "in", "is",
		"null", "exists", "case", "when", "then", "else", "end", "as",
		"asc", "desc", "group", "having", "xor", "div", "regexp", "rlike":
		return true
	}
	return false
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.peekKeyword("select") || p.peekOp("("):
		return p.selectStmt()
	case p.peekKeyword("insert"):
		return p.insertStmt()
	case p.peekKeyword("update"):
		return p.updateStmt()
	case p.peekKeyword("delete"):
		return p.deleteStmt()
	case p.peekKeyword("drop"):
		return p.dropStmt()
	default:
		return nil, p.errHere()
	}
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	// Parenthesized select.
	if p.acceptOp("(") {
		s, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return p.maybeUnion(s)
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.acceptOp("*") {
		s.Star = true
	} else {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			// Optional AS alias (discarded).
			if p.acceptKeyword("as") {
				if _, err := p.expectIdent(); err != nil {
					return nil, err
				}
			}
			s.Fields = append(s.Fields, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("from") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		// Optional schema qualification a.b.
		if p.acceptOp(".") {
			sub, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			name = name + "." + sub
		}
		s.Table = name
		// Optional table alias.
		if p.peek().kind == tokIdent && !reservedWord(p.peek().text) {
			p.i++
		}
	}
	if p.acceptKeyword("where") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	// GROUP BY / HAVING parsed and discarded (attack payloads use them for
	// error-based tricks; the executor treats them as no-ops).
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		if _, err := p.expr(); err != nil {
			return nil, err
		}
		if p.acceptKeyword("having") {
			if _, err := p.expr(); err != nil {
				return nil, err
			}
		}
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			k := OrderKey{Expr: e}
			if p.acceptKeyword("desc") {
				k.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			s.OrderBy = append(s.OrderBy, k)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		lc, err := p.limitClause()
		if err != nil {
			return nil, err
		}
		s.Limit = lc
	}
	if p.acceptKeyword("procedure") {
		// PROCEDURE ANALYSE(...) — parsed, ignored.
		if _, err := p.expectIdent(); err != nil {
			return nil, err
		}
		if p.acceptOp("(") {
			for !p.acceptOp(")") {
				if p.peek().kind == tokEOF {
					return nil, p.errHere()
				}
				p.i++
			}
		}
	}
	return p.maybeUnion(s)
}

func (p *parser) maybeUnion(s *SelectStmt) (*SelectStmt, error) {
	if !p.acceptKeyword("union") {
		return s, nil
	}
	s.UnionAll = p.acceptKeyword("all")
	p.acceptKeyword("distinct")
	nxt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	s.Union = nxt
	return s, nil
}

func (p *parser) limitClause() (*LimitClause, error) {
	first, err := p.intLiteral()
	if err != nil {
		return nil, err
	}
	lc := &LimitClause{Count: first}
	if p.acceptOp(",") {
		second, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		lc.Offset, lc.Count = first, second
	} else if p.acceptKeyword("offset") {
		off, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		lc.Offset = off
	}
	return lc, nil
}

func (p *parser) intLiteral() (int, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errHere()
	}
	p.i++
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errHere()
	}
	return n, nil
}

func (p *parser) insertStmt() (*InsertStmt, error) {
	if err := p.expectKeyword("insert"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	if p.acceptOp("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return st, nil
}

func (p *parser) updateStmt() (*UpdateStmt, error) {
	if err := p.expectKeyword("update"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assign{Col: col, Expr: e})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) deleteStmt() (*DeleteStmt, error) {
	if err := p.expectKeyword("delete"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.acceptKeyword("where") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) dropStmt() (*DropStmt, error) {
	if err := p.expectKeyword("drop"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	p.acceptKeyword("if") // DROP TABLE IF EXISTS
	p.acceptKeyword("exists")
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropStmt{Table: table}, nil
}

// --- expression parsing (precedence climbing) -------------------------------

// expr parses the lowest-precedence level: OR / XOR.
func (p *parser) expr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKeyword("or") || p.acceptOp("||"):
			r, err := p.andExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "or", L: l, R: r}
		case p.acceptKeyword("xor"):
			r, err := p.andExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "xor", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") || p.acceptOp("&&") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("not") || p.acceptOp("!") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "not", X: x}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.bitExpr()
	if err != nil {
		return nil, err
	}
	for {
		not := false
		if p.peekKeyword("not") {
			// Lookahead: NOT BETWEEN / NOT IN / NOT LIKE / NOT REGEXP.
			save := p.i
			p.i++
			if p.peekKeyword("between") || p.peekKeyword("in") || p.peekKeyword("like") || p.peekKeyword("regexp") || p.peekKeyword("rlike") {
				not = true
			} else {
				p.i = save
				return l, nil
			}
		}
		switch {
		case p.acceptKeyword("between"):
			lo, err := p.bitExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("and"); err != nil {
				return nil, err
			}
			hi, err := p.bitExpr()
			if err != nil {
				return nil, err
			}
			l = &Between{X: l, Lo: lo, Hi: hi, Not: not}
		case p.acceptKeyword("in"):
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			il := &InList{X: l, Not: not}
			if p.peekKeyword("select") {
				sub, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				il.Sub = sub
			} else {
				for {
					e, err := p.expr()
					if err != nil {
						return nil, err
					}
					il.List = append(il.List, e)
					if !p.acceptOp(",") {
						break
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			l = il
		case p.acceptKeyword("like"):
			r, err := p.bitExpr()
			if err != nil {
				return nil, err
			}
			op := "like"
			if not {
				op = "not like"
			}
			l = &Binary{Op: op, L: l, R: r}
		case p.acceptKeyword("regexp") || p.acceptKeyword("rlike"):
			r, err := p.bitExpr()
			if err != nil {
				return nil, err
			}
			op := "regexp"
			if not {
				op = "not regexp"
			}
			l = &Binary{Op: op, L: l, R: r}
		case p.acceptKeyword("is"):
			isNot := p.acceptKeyword("not")
			if !p.acceptKeyword("null") {
				// IS TRUE / IS FALSE.
				switch {
				case p.acceptKeyword("true"):
					l = &Binary{Op: "=", L: l, R: &Literal{Val: Number(1)}}
				case p.acceptKeyword("false"):
					l = &Binary{Op: "=", L: l, R: &Literal{Val: Number(0)}}
				default:
					return nil, p.errHere()
				}
				if isNot {
					l = &Unary{Op: "not", X: l}
				}
				continue
			}
			l = &IsNull{X: l, Not: isNot}
		default:
			op, ok := p.compareOp()
			if !ok {
				return l, nil
			}
			r, err := p.bitExpr()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: op, L: l, R: r}
		}
	}
}

func (p *parser) compareOp() (string, bool) {
	for _, op := range []string{"<=>", "<>", "!=", "<=", ">=", "=", "<", ">"} {
		if p.acceptOp(op) {
			if op == "<>" {
				op = "!="
			}
			return op, true
		}
	}
	return "", false
}

func (p *parser) bitExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("|"):
			op = "|"
		case p.acceptOp("&"):
			op = "&"
		case p.acceptOp("^"):
			op = "^"
		default:
			return l, nil
		}
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("+"):
			op = "+"
		case p.acceptOp("-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("*"):
			op = "*"
		case p.acceptOp("/"):
			op = "/"
		case p.acceptOp("%"):
			op = "%"
		case p.acceptKeyword("div"):
			op = "div"
		case p.acceptKeyword("mod"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) unary() (Expr, error) {
	switch {
	case p.acceptOp("-"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	case p.acceptOp("+"):
		return p.unary()
	case p.acceptOp("~"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "~", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.i++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errHere()
		}
		return &Literal{Val: Number(f)}, nil
	case tokString:
		p.i++
		return &Literal{Val: Str(t.text)}, nil
	case tokHex:
		p.i++
		return &Literal{Val: hexLiteral(t.text)}, nil
	case tokParam:
		p.i++
		return &SysVar{Name: strings.ToLower(strings.TrimLeft(t.text, "@"))}, nil
	case tokOp:
		if t.text == "(" {
			p.i++
			if p.peekKeyword("select") {
				sub, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &Subquery{Sel: sub}, nil
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			// Row constructor (a, b, ...): keep the first element — enough
			// for the error-based payloads that use ROW().
			for p.acceptOp(",") {
				if _, err := p.expr(); err != nil {
					return nil, err
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "*" {
			// COUNT(*) handles star in Call parsing; bare * is an error here.
			return nil, p.errHere()
		}
		return nil, p.errHere()
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "null":
			p.i++
			return &Literal{Val: Null()}, nil
		case "true":
			p.i++
			return &Literal{Val: Number(1)}, nil
		case "false":
			p.i++
			return &Literal{Val: Number(0)}, nil
		case "case":
			return p.caseExpr()
		case "exists":
			p.i++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Sel: sub}, nil
		}
		if reservedWord(t.text) {
			return nil, p.errHere()
		}
		p.i++
		// Function call?
		if p.acceptOp("(") {
			call := &Call{Name: strings.ToLower(t.text)}
			if p.acceptOp("*") {
				call.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if !p.acceptOp(")") {
				for {
					// Subquery argument: char((select ...)) style handled by
					// primary; bare SELECT also accepted.
					if p.peekKeyword("select") {
						sub, err := p.selectStmt()
						if err != nil {
							return nil, err
						}
						call.Args = append(call.Args, &Subquery{Sel: sub})
					} else {
						e, err := p.expr()
						if err != nil {
							return nil, err
						}
						call.Args = append(call.Args, e)
					}
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		ref := &ColumnRef{Name: t.text}
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ref.Table, ref.Name = ref.Name, col
		}
		return ref, nil
	}
	return nil, p.errHere()
}

func (p *parser) caseExpr() (Expr, error) {
	if err := p.expectKeyword("case"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	for p.acceptKeyword("when") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		res, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Result: res})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errHere()
	}
	if p.acceptKeyword("else") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return ce, nil
}
