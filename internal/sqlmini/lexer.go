// Package sqlmini is a miniature MySQL-dialect SQL engine: lexer, parser
// and in-memory executor for the subset of the language SQL-injection
// attacks manipulate — SELECT/INSERT/UPDATE/DELETE with WHERE expressions,
// UNION, subqueries, comments (--, #, /* */), string/hex literals, MySQL's
// loose type coercions (the reason '1'='1' and 1='1' are true), and the
// information functions attackers call (version(), database(), user(),
// sleep(), benchmark(), char(), concat(), ...).
//
// It is the database tier of the paper's three-tier testbed (Apache Tomcat
// + MySQL): internal/webapp interpolates request parameters into SQL
// templates and executes them here, so scanners observe genuine error-,
// boolean-, union- and time-based signals rather than heuristic ones.
package sqlmini

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokHex
	tokOp      // punctuation and operators
	tokParam   // user variable @@name or @name
	tokComment // retained only internally; the lexer skips them
)

type token struct {
	kind tokenKind
	text string // uppercase for idents? no: original; idents compared case-insensitively
	pos  int
}

// SyntaxError is the MySQL-style error the engine reports, carrying the
// text near which parsing failed (the part web apps echo back to scanners).
type SyntaxError struct {
	Near string
	Pos  int
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("You have an error in your SQL syntax; check the manual for the right syntax to use near '%s' at line 1", e.Near)
}

// lexer tokenizes one SQL statement string.
type lexer struct {
	src string
	pos int
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isIdentByte(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '$' }

// lex scans the whole input. It returns a SyntaxError for unterminated
// strings or block comments — the lexical failures injections cause.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src}
	var out []token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		if tok.kind == tokComment {
			continue
		}
		out = append(out, tok)
		if tok.kind == tokEOF {
			return out, nil
		}
	}
}

func (l *lexer) errNear(pos int) *SyntaxError {
	near := l.src[pos:]
	if len(near) > 40 {
		near = near[:40]
	}
	return &SyntaxError{Near: near, Pos: pos}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f':
			l.pos++
		case c == '#':
			// Line comment to end of input.
			l.pos = len(l.src)
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// MySQL's -- comment requires whitespace or end after the
			// dashes; otherwise it is the minus operator twice.
			if l.pos+2 >= len(l.src) {
				l.pos = len(l.src)
				continue
			}
			if ws := l.src[l.pos+2]; ws == ' ' || ws == '\t' || ws == '\n' || ws == '\r' {
				l.pos = len(l.src)
				continue
			}
			l.pos++
			return token{kind: tokOp, text: "-", pos: l.pos - 1}, nil
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, l.errNear(l.pos)
			}
			body := l.src[l.pos+2 : l.pos+2+end]
			l.pos += 2 + end + 2
			// MySQL executes /*! ... */ version comments as SQL.
			if strings.HasPrefix(body, "!") {
				inner := strings.TrimLeft(body[1:], "0123456789")
				l.src = l.src[:l.pos] + " " + inner + " " + l.src[l.pos:]
			}
		default:
			return l.scanToken()
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil
}

func (l *lexer) scanToken() (token, error) {
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'' || c == '"':
		return l.scanString(c)
	case c == '`':
		// Quoted identifier.
		end := strings.IndexByte(l.src[l.pos+1:], '`')
		if end < 0 {
			return token{}, l.errNear(start)
		}
		text := l.src[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return token{kind: tokIdent, text: text, pos: start}, nil
	case c == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X'):
		j := l.pos + 2
		for j < len(l.src) && isHexDigit(l.src[j]) {
			j++
		}
		if j == l.pos+2 {
			// Plain number 0 followed by identifier x...
			l.pos++
			return token{kind: tokNumber, text: "0", pos: start}, nil
		}
		text := l.src[l.pos:j]
		l.pos = j
		return token{kind: tokHex, text: text, pos: start}, nil
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		j := l.pos
		seenDot := false
		for j < len(l.src) && (isDigit(l.src[j]) || (l.src[j] == '.' && !seenDot)) {
			if l.src[j] == '.' {
				seenDot = true
			}
			j++
		}
		text := l.src[l.pos:j]
		l.pos = j
		return token{kind: tokNumber, text: text, pos: start}, nil
	case isIdentStart(c):
		j := l.pos
		for j < len(l.src) && isIdentByte(l.src[j]) {
			j++
		}
		text := l.src[l.pos:j]
		l.pos = j
		return token{kind: tokIdent, text: text, pos: start}, nil
	case c == '@':
		j := l.pos + 1
		if j < len(l.src) && l.src[j] == '@' {
			j++
		}
		for j < len(l.src) && isIdentByte(l.src[j]) {
			j++
		}
		text := l.src[l.pos:j]
		l.pos = j
		return token{kind: tokParam, text: text, pos: start}, nil
	default:
		// Multi-byte operators first.
		for _, op := range []string{"<=>", "<>", "!=", "<=", ">=", "||", "&&", ":="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return token{kind: tokOp, text: op, pos: start}, nil
			}
		}
		if strings.IndexByte("+-*/%(),.;=<>!&|^~", c) >= 0 {
			l.pos++
			return token{kind: tokOp, text: string(c), pos: start}, nil
		}
		return token{}, l.errNear(start)
	}
}

// scanString handles MySQL string literals with backslash escapes and
// doubled-quote escapes.
func (l *lexer) scanString(quote byte) (token, error) {
	start := l.pos
	var b strings.Builder
	i := l.pos + 1
	for i < len(l.src) {
		c := l.src[i]
		switch {
		case c == '\\' && i+1 < len(l.src):
			esc := l.src[i+1]
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '0':
				b.WriteByte(0)
			default:
				b.WriteByte(esc)
			}
			i += 2
		case c == quote:
			if i+1 < len(l.src) && l.src[i+1] == quote {
				b.WriteByte(quote)
				i += 2
				continue
			}
			l.pos = i + 1
			return token{kind: tokString, text: b.String(), pos: start}, nil
		default:
			b.WriteByte(c)
			i++
		}
	}
	return token{}, l.errNear(start)
}

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
