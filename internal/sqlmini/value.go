package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a MySQL-ish runtime value: NULL, a number, or a string. The
// loose comparison semantics here ('1' = 1, 'abc' = 0) are exactly what
// tautology injections exploit, so they are implemented faithfully.
type Value struct {
	null  bool
	isNum bool
	num   float64
	str   string
}

// Null returns the NULL value.
func Null() Value { return Value{null: true} }

// Number returns a numeric value.
func Number(f float64) Value { return Value{isNum: true, num: f} }

// Str returns a string value.
func Str(s string) Value { return Value{str: s} }

// Bool returns MySQL's boolean encoding (1 / 0).
func Bool(b bool) Value {
	if b {
		return Number(1)
	}
	return Number(0)
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.null }

// AsNumber coerces the value to a float the MySQL way: strings convert
// from their longest numeric prefix ('12abc' → 12, 'abc' → 0), NULL → 0.
func (v Value) AsNumber() float64 {
	switch {
	case v.null:
		return 0
	case v.isNum:
		return v.num
	default:
		s := strings.TrimLeft(v.str, " \t")
		end := 0
		seenDot := false
		for end < len(s) {
			c := s[end]
			if c == '-' || c == '+' {
				if end != 0 {
					break
				}
			} else if c == '.' {
				if seenDot {
					break
				}
				seenDot = true
			} else if !(c >= '0' && c <= '9') {
				break
			}
			end++
		}
		f, err := strconv.ParseFloat(s[:end], 64)
		if err != nil {
			return 0
		}
		return f
	}
}

// AsString renders the value as MySQL would in a result set.
func (v Value) AsString() string {
	switch {
	case v.null:
		return "NULL"
	case v.isNum:
		if v.num == float64(int64(v.num)) {
			return strconv.FormatInt(int64(v.num), 10)
		}
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	default:
		return v.str
	}
}

// Truthy is MySQL's WHERE-clause truth: nonzero number (after coercion).
// NULL is not true.
func (v Value) Truthy() bool {
	if v.null {
		return false
	}
	return v.AsNumber() != 0
}

// Compare returns -1/0/1 using MySQL's comparison rules: if both operands
// are strings, compare case-insensitively as strings; otherwise compare
// numerically with coercion. ok is false when either side is NULL
// (comparisons with NULL are NULL).
func Compare(a, b Value) (int, bool) {
	if a.null || b.null {
		return 0, false
	}
	if !a.isNum && !b.isNum {
		sa, sb := strings.ToLower(a.str), strings.ToLower(b.str)
		switch {
		case sa < sb:
			return -1, true
		case sa > sb:
			return 1, true
		default:
			return 0, true
		}
	}
	na, nb := a.AsNumber(), b.AsNumber()
	switch {
	case na < nb:
		return -1, true
	case na > nb:
		return 1, true
	default:
		return 0, true
	}
}

// NullSafeEqual is the <=> operator: like =, but NULL <=> NULL is true.
func NullSafeEqual(a, b Value) bool {
	if a.null || b.null {
		return a.null && b.null
	}
	c, _ := Compare(a, b)
	return c == 0
}

// hexLiteral decodes 0x... into a string value, as MySQL does in string
// context (0x414243 = 'ABC').
func hexLiteral(text string) Value {
	hx := text[2:]
	if len(hx)%2 == 1 {
		hx = "0" + hx
	}
	var b strings.Builder
	for i := 0; i+1 < len(hx); i += 2 {
		hi, _ := hexVal(hx[i])
		lo, _ := hexVal(hx[i+1])
		b.WriteByte(hi<<4 | lo)
	}
	return Str(b.String())
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// likeMatch implements the LIKE operator (% and _ wildcards,
// case-insensitive).
func likeMatch(s, pattern string) bool {
	s = strings.ToLower(s)
	pattern = strings.ToLower(pattern)
	var match func(si, pi int) bool
	match = func(si, pi int) bool {
		for pi < len(pattern) {
			switch pattern[pi] {
			case '%':
				// Collapse consecutive %.
				for pi < len(pattern) && pattern[pi] == '%' {
					pi++
				}
				if pi == len(pattern) {
					return true
				}
				for k := si; k <= len(s); k++ {
					if match(k, pi) {
						return true
					}
				}
				return false
			case '_':
				if si >= len(s) {
					return false
				}
				si++
				pi++
			case '\\':
				if pi+1 < len(pattern) {
					pi++
				}
				fallthrough
			default:
				if si >= len(s) || s[si] != pattern[pi] {
					return false
				}
				si++
				pi++
			}
		}
		return si == len(s)
	}
	return match(0, 0)
}

// ExecError is a runtime (non-syntax) error: unknown table/column, column
// count mismatch in UNION — the errors error-based injections provoke.
type ExecError struct{ Msg string }

func (e *ExecError) Error() string { return e.Msg }

func execErrorf(format string, args ...any) *ExecError {
	return &ExecError{Msg: fmt.Sprintf(format, args...)}
}
