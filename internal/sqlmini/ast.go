package sqlmini

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is SELECT fields FROM table WHERE ... [UNION [ALL] select]
// [ORDER BY ...] [LIMIT n[, m]].
type SelectStmt struct {
	Fields   []Expr
	Star     bool
	Table    string // "" for table-less SELECT (SELECT 1, SELECT version())
	Where    Expr   // nil when absent
	OrderBy  []OrderKey
	Limit    *LimitClause
	Union    *SelectStmt // next SELECT in a UNION chain
	UnionAll bool
}

// OrderKey is one ORDER BY key: either a column expression or a 1-based
// column position (the form UNION column probing uses).
type OrderKey struct {
	Expr Expr
	Desc bool
}

// LimitClause is LIMIT Offset, Count or LIMIT Count.
type LimitClause struct {
	Offset, Count int
}

// InsertStmt is INSERT INTO table (cols) VALUES (exprs), ...
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// UpdateStmt is UPDATE table SET col=expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Set   []Assign
	Where Expr
}

// Assign is one SET column = expression pair.
type Assign struct {
	Col  string
	Expr Expr
}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// DropStmt is DROP TABLE name.
type DropStmt struct {
	Table string
}

func (*SelectStmt) stmt() {}
func (*InsertStmt) stmt() {}
func (*UpdateStmt) stmt() {}
func (*DeleteStmt) stmt() {}
func (*DropStmt) stmt()   {}

// Expr is any expression node.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val Value }

// ColumnRef names a column (optionally table-qualified, the qualifier is
// recorded but ignored by the single-table executor).
type ColumnRef struct{ Table, Name string }

// SysVar is @@version-style system variable access.
type SysVar struct{ Name string }

// Unary is NOT x, -x, ~x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is any infix operation (arithmetic, comparison, AND/OR, LIKE...).
type Binary struct {
	Op   string // lowercase canonical: "and" "or" "xor" "=" "<" "like" ...
	L, R Expr
}

// Between is x BETWEEN lo AND hi (negated when Not).
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// InList is x IN (a, b, ...) or x IN (subquery).
type InList struct {
	X    Expr
	List []Expr
	Sub  *SelectStmt
	Not  bool
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Call is a function invocation.
type Call struct {
	Name string // lowercase
	Args []Expr
	Star bool // COUNT(*)
}

// Subquery is a scalar subquery in expression position.
type Subquery struct{ Sel *SelectStmt }

// ExistsExpr is EXISTS (subquery).
type ExistsExpr struct{ Sel *SelectStmt }

// CaseExpr is CASE WHEN cond THEN val [WHEN ...] [ELSE val] END.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr
}

// WhenClause is one WHEN condition THEN result arm.
type WhenClause struct{ Cond, Result Expr }

func (*Literal) expr()    {}
func (*ColumnRef) expr()  {}
func (*SysVar) expr()     {}
func (*Unary) expr()      {}
func (*Binary) expr()     {}
func (*Between) expr()    {}
func (*InList) expr()     {}
func (*IsNull) expr()     {}
func (*Call) expr()       {}
func (*Subquery) expr()   {}
func (*ExistsExpr) expr() {}
func (*CaseExpr) expr()   {}
