package sqlmini

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"strings"
)

// evalCall implements the function subset SQL-injection payloads rely on.
func (db *DB) evalCall(c *Call, env *rowEnv) (Value, error) {
	if c.Star {
		if c.Name == "count" {
			// COUNT(*) outside aggregate position: treat as 1 per row.
			return Number(1), nil
		}
		return Value{}, execErrorf("Incorrect usage of %s(*)", c.Name)
	}
	// IF evaluates lazily: only the selected branch runs, so conditional
	// sleep payloads time exactly one arm, as in MySQL.
	if c.Name == "if" {
		if len(c.Args) != 3 {
			return Value{}, execErrorf("Incorrect parameter count in the call to native function 'if'")
		}
		cond, err := db.eval(c.Args[0], env)
		if err != nil {
			return Value{}, err
		}
		if cond.Truthy() {
			return db.eval(c.Args[1], env)
		}
		return db.eval(c.Args[2], env)
	}
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, err := db.eval(a, env)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return execErrorf("Incorrect parameter count in the call to native function '%s'", c.Name)
		}
		return nil
	}

	switch c.Name {
	case "version":
		return Str(db.VersionString), nil
	case "database", "schema":
		return Str(db.SchemaName), nil
	case "user", "current_user", "session_user", "system_user":
		return Str(db.UserName), nil
	case "connection_id":
		return Number(42), nil
	case "last_insert_id":
		return Number(0), nil

	case "sleep":
		if err := need(1); err != nil {
			return Value{}, err
		}
		db.SleepSeconds += args[0].AsNumber()
		return Number(0), nil
	case "benchmark":
		if err := need(2); err != nil {
			return Value{}, err
		}
		// Simulated: 1M iterations of a cheap expression ≈ 0.25s on the
		// paper-era hardware.
		db.SleepSeconds += args[0].AsNumber() / 4e6
		return Number(0), nil

	case "concat":
		var b strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return Null(), nil
			}
			b.WriteString(a.AsString())
		}
		return Str(b.String()), nil
	case "concat_ws":
		if len(args) < 1 {
			return Value{}, execErrorf("Incorrect parameter count in the call to native function 'concat_ws'")
		}
		sep := args[0].AsString()
		var parts []string
		for _, a := range args[1:] {
			if a.IsNull() {
				continue
			}
			parts = append(parts, a.AsString())
		}
		return Str(strings.Join(parts, sep)), nil
	case "group_concat":
		// Non-aggregate approximation: concatenate the arguments.
		var parts []string
		for _, a := range args {
			if !a.IsNull() {
				parts = append(parts, a.AsString())
			}
		}
		return Str(strings.Join(parts, ",")), nil
	case "char":
		var b strings.Builder
		for _, a := range args {
			b.WriteByte(byte(int(a.AsNumber())))
		}
		return Str(b.String()), nil
	case "ascii", "ord":
		if err := need(1); err != nil {
			return Value{}, err
		}
		s := args[0].AsString()
		if s == "" || args[0].IsNull() {
			return Number(0), nil
		}
		return Number(float64(s[0])), nil
	case "length", "char_length":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Number(float64(len(args[0].AsString()))), nil
	case "substring", "substr", "mid":
		if len(args) != 2 && len(args) != 3 {
			return Value{}, execErrorf("Incorrect parameter count in the call to native function '%s'", c.Name)
		}
		s := args[0].AsString()
		start := int(args[1].AsNumber())
		if start < 1 {
			start = 1
		}
		if start > len(s) {
			return Str(""), nil
		}
		out := s[start-1:]
		if len(args) == 3 {
			n := int(args[2].AsNumber())
			if n < len(out) {
				if n < 0 {
					n = 0
				}
				out = out[:n]
			}
		}
		return Str(out), nil
	case "left":
		if err := need(2); err != nil {
			return Value{}, err
		}
		s := args[0].AsString()
		n := int(args[1].AsNumber())
		if n > len(s) {
			n = len(s)
		}
		if n < 0 {
			n = 0
		}
		return Str(s[:n]), nil
	case "right":
		if err := need(2); err != nil {
			return Value{}, err
		}
		s := args[0].AsString()
		n := int(args[1].AsNumber())
		if n > len(s) {
			n = len(s)
		}
		if n < 0 {
			n = 0
		}
		return Str(s[len(s)-n:]), nil
	case "lower", "lcase":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return Str(strings.ToLower(args[0].AsString())), nil
	case "upper", "ucase":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return Str(strings.ToUpper(args[0].AsString())), nil
	case "hex":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return Str(strings.ToUpper(hex.EncodeToString([]byte(args[0].AsString())))), nil
	case "unhex":
		if err := need(1); err != nil {
			return Value{}, err
		}
		b, err := hex.DecodeString(args[0].AsString())
		if err != nil {
			return Null(), nil
		}
		return Str(string(b)), nil
	case "md5":
		if err := need(1); err != nil {
			return Value{}, err
		}
		sum := md5.Sum([]byte(args[0].AsString()))
		return Str(hex.EncodeToString(sum[:])), nil
	case "ifnull":
		if err := need(2); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return args[1], nil
		}
		return args[0], nil
	case "nullif":
		if err := need(2); err != nil {
			return Value{}, err
		}
		if cmp, ok := Compare(args[0], args[1]); ok && cmp == 0 {
			return Null(), nil
		}
		return args[0], nil
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	case "greatest":
		return extremum(args, true)
	case "least":
		return extremum(args, false)
	case "floor":
		if err := need(1); err != nil {
			return Value{}, err
		}
		n := args[0].AsNumber()
		return Number(float64(int64(n) - boolToInt(n < 0 && n != float64(int64(n))))), nil
	case "rand":
		// Deterministic "random": the error-based floor(rand(0)*2) trick
		// needs rand(0) to vary per row; 0.6 makes floor(rand(0)*2)=1,
		// which is enough to exercise the duplicate-key path's syntax.
		return Number(0.6), nil
	case "count":
		// Non-aggregate position: 1 if argument non-null.
		if len(args) == 1 && args[0].IsNull() {
			return Number(0), nil
		}
		return Number(1), nil
	case "strcmp":
		if err := need(2); err != nil {
			return Value{}, err
		}
		cmp, ok := Compare(args[0], args[1])
		if !ok {
			return Null(), nil
		}
		return Number(float64(cmp)), nil
	case "load_file":
		if err := need(1); err != nil {
			return Value{}, err
		}
		// File access is simulated: the privilege is denied, as a hardened
		// MySQL account would be.
		return Null(), nil
	case "extractvalue", "updatexml":
		// The error-based channel: a malformed XPath (the injected value,
		// typically 0x7e-prefixed) raises an error echoing the evaluated
		// subexpression — exactly the exfiltration vector.
		if len(args) >= 2 {
			xpath := args[1].AsString()
			if strings.ContainsAny(xpath, "~^|$#:") || !strings.HasPrefix(xpath, "/") {
				trimmed := xpath
				if len(trimmed) > 32 {
					trimmed = trimmed[:32]
				}
				return Value{}, execErrorf("XPATH syntax error: '%s'", trimmed)
			}
		}
		return Null(), nil
	case "cast", "convert":
		if len(args) >= 1 {
			return args[0], nil
		}
		return Null(), nil
	case "row":
		if len(args) >= 1 {
			return args[0], nil
		}
		return Null(), nil
	case "found_rows", "row_count":
		return Number(0), nil
	case "procedure":
		return Null(), nil
	}
	return Value{}, execErrorf("FUNCTION %s.%s does not exist", db.SchemaName, c.Name)
}

func extremum(args []Value, max bool) (Value, error) {
	if len(args) == 0 {
		return Value{}, execErrorf("Incorrect parameter count")
	}
	best := args[0]
	for _, a := range args[1:] {
		cmp, ok := Compare(a, best)
		if !ok {
			return Null(), nil
		}
		if (max && cmp > 0) || (!max && cmp < 0) {
			best = a
		}
	}
	return best, nil
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// String renders a result set for logging and tests.
func (r *Result) String() string {
	if r == nil {
		return "<nil>"
	}
	if r.Cols == nil {
		return fmt.Sprintf("OK, %d row(s) affected", r.Affected)
	}
	var b strings.Builder
	b.WriteString(strings.Join(r.Cols, " | "))
	for _, row := range r.Rows {
		b.WriteByte('\n')
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.AsString()
		}
		b.WriteString(strings.Join(parts, " | "))
	}
	return b.String()
}
